"""One unified configuration for a campaign's whole serving stack.

Before the :class:`~repro.engine.campaign.Campaign` facade, choosing a
shard count meant choosing a *class* (``CampaignEngine`` vs
``ShardedCampaignEngine(..., ShardingConfig(k))``) and threading two
config objects through.  :class:`CampaignConfig` subsumes
:class:`~repro.engine.engine.EngineConfig` and
:class:`~repro.engine.sharding.ShardingConfig`: every engine, cache,
routing, and rebalancing knob in one frozen dataclass, with shard count
as an ordinary field (``num_shards=1`` serves through the single
scheduler, ``>1`` through the sharded one — the two are byte-identical
at one shard, pinned by regression tests).

The config round-trips through :meth:`to_dict` / :meth:`from_dict`, so
state backends persist it alongside the campaign and
``Campaign.resume`` rebuilds the exact serving stack.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Mapping

from ..core.task import UNINFORMATIVE_PRIOR
from .engine import EngineConfig
from .sharding import ShardingConfig

#: EngineConfig fields CampaignConfig forwards verbatim.
_ENGINE_FIELDS = tuple(f.name for f in fields(EngineConfig))


@dataclass(frozen=True)
class CampaignConfig:
    """Tunables of one campaign, across every serving layer.

    The first block mirrors :class:`EngineConfig` (see its docstring
    for per-field semantics); the second block mirrors
    :class:`ShardingConfig` with ``num_shards=1`` meaning "serve
    through the single scheduler".
    """

    budget: float
    expected_tasks: int | None = None
    capacity: int = 4
    batch_size: int = 25
    alpha: float = UNINFORMATIVE_PRIOR
    confidence_target: float = 0.97
    num_buckets: int = 50
    quantization: int | str | None = "auto"
    cache_max_entries: int | None = None
    frontier_pool_size: int = 10
    reestimate_every: int = 0
    reestimate_method: str = "one-coin"
    reestimate_rate: float = 0.3
    jq_kernel: str = "batch"
    checkpoint_every: int = 0
    vote_latency: float = 1.0
    ingestion: str = "sync"
    parallel_shards: int = 0
    dispatch: str = "threads"
    vote_fanout: int = 0
    ingest_max_pending: int = 10_000
    ingest_grace: float | str = 0.05
    ingest_producer_quota: float = 0.0
    telemetry: str = "off"
    trace_path: str | None = None
    metrics_interval: float = 1.0
    vote_source: str = "simulated"
    seed: int | None = None
    # -- sharding / routing (ShardingConfig) ---------------------------
    num_shards: int = 1
    routing_policy: str = "hash"
    rebalance_threshold: float = 0.25
    rebalance_max_moves: int = 2
    # -- network serving (repro serve / CampaignServer) ----------------
    serve_host: str = "127.0.0.1"
    serve_port: int = 8765
    # -- cross-process coordination (repro.engine.procpool) ------------
    # A shared SQLite file through which N engine processes lease worker
    # seats (None = this engine owns its pool outright).  Keep it
    # separate from any per-engine checkpoint path: checkpoints replace
    # whole tables and must not clobber shared leases.
    coordinate_path: str | None = None
    lease_ttl: float = 30.0

    def __post_init__(self) -> None:
        if not 0 <= self.serve_port <= 65535:
            raise ValueError("serve_port must lie in [0, 65535]")
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        # Delegate validation to the configs this one subsumes; they
        # own the invariants, this class owns the unified surface.
        self.engine_config()
        ShardingConfig(
            self.num_shards,
            policy=self.routing_policy,
            rebalance_threshold=self.rebalance_threshold,
            rebalance_max_moves=self.rebalance_max_moves,
        )

    # ------------------------------------------------------------------
    # Views onto the subsumed configs
    # ------------------------------------------------------------------
    def engine_config(self) -> EngineConfig:
        return EngineConfig(**{f: getattr(self, f) for f in _ENGINE_FIELDS})

    def sharding_config(self) -> ShardingConfig | None:
        """The sharded layer's config, or ``None`` when ``num_shards``
        is 1 (single-scheduler serving)."""
        if self.num_shards == 1:
            return None
        return ShardingConfig(
            self.num_shards,
            policy=self.routing_policy,
            rebalance_threshold=self.rebalance_threshold,
            rebalance_max_moves=self.rebalance_max_moves,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, state: Mapping) -> "CampaignConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(state) - known
        if unknown:
            raise ValueError(
                f"unknown CampaignConfig fields {sorted(unknown)}"
            )
        return cls(**dict(state))

    @classmethod
    def from_engine_config(
        cls,
        config: EngineConfig,
        sharding: ShardingConfig | None = None,
    ) -> "CampaignConfig":
        """Lift legacy ``EngineConfig`` (+ optional ``ShardingConfig``)
        into the unified config — the migration path for callers moving
        off the deprecated engine classes."""
        merged = {f: getattr(config, f) for f in _ENGINE_FIELDS}
        if sharding is not None:
            merged.update(
                num_shards=sharding.num_shards,
                routing_policy=sharding.policy,
                rebalance_threshold=sharding.rebalance_threshold,
                rebalance_max_moves=sharding.rebalance_max_moves,
            )
        return cls(**merged)


def _assert_defaults_match() -> None:
    """The unified config restates the subsumed configs' defaults so it
    reads as one coherent surface — but a default changed in
    :class:`EngineConfig`/:class:`ShardingConfig` and not here would
    silently hand facade users and shim users different campaigns.
    Fail at import instead."""
    own = {f.name: f.default for f in fields(CampaignConfig)}
    for f in fields(EngineConfig):
        if f.name != "budget" and own[f.name] != f.default:
            raise AssertionError(
                f"CampaignConfig.{f.name} default {own[f.name]!r} diverged "
                f"from EngineConfig's {f.default!r}"
            )
    sharding_map = {
        "policy": "routing_policy",
        "rebalance_threshold": "rebalance_threshold",
        "rebalance_max_moves": "rebalance_max_moves",
    }
    for f in fields(ShardingConfig):
        unified = sharding_map.get(f.name)
        if unified is not None and own[unified] != f.default:
            raise AssertionError(
                f"CampaignConfig.{unified} default {own[unified]!r} "
                f"diverged from ShardingConfig.{f.name}'s {f.default!r}"
            )


_assert_defaults_match()
