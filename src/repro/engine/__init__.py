"""Campaign engine: event-driven, capacity-aware jury-selection serving.

The paper answers "which jury for *one* task with a known pool"; this
package answers "which juries for a *stream* of tasks sharing one pool,
one budget, and finite worker attention".  See the module docstrings:

``events``
    The deterministic event algebra and queue.
``state``
    :class:`WorkerRegistry` — capacity, load, spend, vote history, and
    EM-backed quality drift.
``cache``
    :class:`JQCache` / :class:`CachedJQObjective` — campaign-wide JQ
    memoization.
``scheduler``
    :class:`CampaignScheduler` — batch admission, budget pacing,
    capacity-aware seating over the portfolio/frontier machinery.
``sharding``
    :class:`ShardedCampaignEngine` / :class:`ShardedScheduler` /
    :class:`BudgetAllocator` — K shard schedulers (each inside the
    exact-frontier cap) under one quality-mass-proportional budget
    allocator, with task routing and idle-worker rebalancing.
``engine``
    :class:`CampaignEngine` — the event loop.
``metrics``
    :class:`EngineMetrics` — throughput, realized-vs-predicted
    accuracy, spend, cache stats, per-shard/allocator snapshots.
"""

from .cache import CachedJQObjective, CacheStats, JQCache
from .engine import CampaignEngine, EngineConfig
from .events import (
    EngineTask,
    Event,
    EventQueue,
    TaskArrival,
    TaskComplete,
    VoteArrival,
)
from .metrics import (
    AllocatorSnapshot,
    EngineMetrics,
    ShardSnapshot,
    TaskRecord,
)
from .scheduler import Assignment, CampaignScheduler, SchedulerStats
from .sharding import (
    ROUTING_POLICIES,
    BudgetAllocator,
    Shard,
    ShardedCampaignEngine,
    ShardedScheduler,
    ShardingConfig,
    ShardRegistryView,
    partition_members,
)
from .state import (
    CapacityError,
    WorkerRegistry,
    WorkerState,
    informativeness,
    quality_mass,
)

__all__ = [
    "AllocatorSnapshot",
    "Assignment",
    "BudgetAllocator",
    "CachedJQObjective",
    "CacheStats",
    "CampaignEngine",
    "CampaignScheduler",
    "CapacityError",
    "EngineConfig",
    "EngineMetrics",
    "EngineTask",
    "Event",
    "EventQueue",
    "ROUTING_POLICIES",
    "SchedulerStats",
    "Shard",
    "ShardRegistryView",
    "ShardSnapshot",
    "ShardedCampaignEngine",
    "ShardedScheduler",
    "ShardingConfig",
    "TaskArrival",
    "TaskComplete",
    "TaskRecord",
    "VoteArrival",
    "WorkerRegistry",
    "WorkerState",
    "informativeness",
    "partition_members",
    "quality_mass",
]
