"""Campaign engine: event-driven, capacity-aware jury-selection serving.

The paper answers "which jury for *one* task with a known pool"; this
package answers "which juries for a *stream* of tasks sharing one pool,
one budget, and finite worker attention".  See the module docstrings:

``events``
    The deterministic event algebra and queue.
``state``
    :class:`WorkerRegistry` — capacity, load, spend, vote history, and
    EM-backed quality drift.
``cache``
    :class:`JQCache` / :class:`CachedJQObjective` — campaign-wide JQ
    memoization.
``scheduler``
    :class:`CampaignScheduler` — batch admission, budget pacing,
    capacity-aware seating over the portfolio/frontier machinery.
``engine``
    :class:`CampaignEngine` — the event loop.
``metrics``
    :class:`EngineMetrics` — throughput, realized-vs-predicted
    accuracy, spend, cache stats.
"""

from .cache import CachedJQObjective, CacheStats, JQCache
from .engine import CampaignEngine, EngineConfig
from .events import (
    EngineTask,
    Event,
    EventQueue,
    TaskArrival,
    TaskComplete,
    VoteArrival,
)
from .metrics import EngineMetrics, TaskRecord
from .scheduler import Assignment, CampaignScheduler, SchedulerStats
from .state import CapacityError, WorkerRegistry, WorkerState

__all__ = [
    "Assignment",
    "CachedJQObjective",
    "CacheStats",
    "CampaignEngine",
    "CampaignScheduler",
    "CapacityError",
    "EngineConfig",
    "EngineMetrics",
    "EngineTask",
    "Event",
    "EventQueue",
    "SchedulerStats",
    "TaskArrival",
    "TaskComplete",
    "TaskRecord",
    "VoteArrival",
    "WorkerRegistry",
    "WorkerState",
]
