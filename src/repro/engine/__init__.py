"""Campaign engine: event-driven, capacity-aware jury-selection serving.

The paper answers "which jury for *one* task with a known pool"; this
package answers "which juries for a *stream* of tasks sharing one pool,
one budget, and finite worker attention".  See the module docstrings:

``events``
    The deterministic event algebra and queue.
``state``
    :class:`WorkerRegistry` — capacity, load, spend, vote history, and
    EM-backed quality drift.
``cache``
    :class:`JQCache` / :class:`CachedJQObjective` — campaign-wide JQ
    memoization.
``scheduler``
    :class:`CampaignScheduler` — batch admission, budget pacing,
    capacity-aware seating over the portfolio/frontier machinery.
``sharding``
    :class:`ShardedCampaignEngine` / :class:`ShardedScheduler` /
    :class:`BudgetAllocator` — K shard schedulers (each inside the
    exact-frontier cap) under one quality-mass-proportional budget
    allocator, with task routing and idle-worker rebalancing.
``engine``
    :class:`CampaignEngine` — the event loop.
``ingest``
    :class:`IntakeQueue` / :class:`AsyncIngestLoop` /
    :class:`InterleavingSchedule` — thread-safe live intake with
    bounded backpressure, the drain-before-step async serving loop,
    and seeded replayable interleavings
    (``CampaignConfig(ingestion="async")``).
``metrics``
    :class:`EngineMetrics` — throughput, realized-vs-predicted
    accuracy, spend, cache stats, per-shard/allocator snapshots.
``procpool``
    :class:`ShardProcessPool` / :class:`LeaseCoordinator` — multi-process
    campaign pools: shard admit rounds shipped to persistent worker
    processes (``CampaignConfig(dispatch="processes")``,
    byte-identical to threads), and cross-process seat leases over a
    shared SQLite file so N serving engines share one worker pool
    without double-seating (``coordinate_path=...``).
``server``
    :class:`CampaignServer` — the HTTP serving layer: task intake,
    vote-offer assignments, synchronous vote delivery, status/metrics
    endpoints, and admin checkpoint/close over a live campaign in
    serve-forever daemon mode (``repro serve``).
``telemetry``
    :class:`Telemetry` / :data:`NULL_TELEMETRY` — thread-safe metrics
    registry (counters, gauges, latency histograms), bounded structured
    event trace with profiling spans, windowed intake/throughput rates,
    and JSON / Prometheus / Chrome-trace exports
    (``CampaignConfig(telemetry="on")``).
``campaign`` / ``config`` / ``backends``
    :class:`Campaign` — the public serving facade: explicit lifecycle
    (``open`` / ``submit`` / ``run(until=...)`` / ``checkpoint`` /
    ``resume`` / ``close``) over one unified :class:`CampaignConfig`,
    with pluggable persistent state (:class:`StateBackend` —
    :class:`MemoryBackend`, :class:`SQLiteBackend`).  The engine
    classes above remain as deprecated shims.
"""

from .backends import (
    BackendError,
    MemoryBackend,
    SQLiteBackend,
    StaleEpochError,
    StateBackend,
)
from .cache import (
    CachedJQObjective,
    CacheStats,
    JQCache,
    adaptive_quantization,
    load_cache_file,
    save_cache_file,
)
from .campaign import Campaign
from .config import CampaignConfig
from .engine import CampaignEngine, EngineConfig
from .events import (
    EngineTask,
    Event,
    EventQueue,
    TaskArrival,
    TaskComplete,
    VoteArrival,
)
from .ingest import (
    AssignmentBook,
    AsyncIngestLoop,
    IngestionClosed,
    IngestionError,
    IngestionOverflow,
    IngestStats,
    IntakeQueue,
    InterleavingSchedule,
    NoOpenOffer,
)
from .procpool import (
    AdmitResult,
    LeaseCoordinator,
    ProcPoolError,
    ShardProcessPool,
    ShardWorkState,
)
from .metrics import (
    AllocatorSnapshot,
    EngineMetrics,
    ShardSnapshot,
    TaskRecord,
)
from .server import (
    CampaignServer,
    LoopMailbox,
    ServerError,
)
from .scheduler import (
    Assignment,
    CampaignScheduler,
    SchedulerStats,
    SubstituteIndex,
    linear_best_substitute,
)
from .sharding import (
    ROUTING_POLICIES,
    BudgetAllocator,
    Shard,
    ShardedCampaignEngine,
    ShardedScheduler,
    ShardingConfig,
    ShardRegistryView,
    partition_members,
)
from .state import (
    CapacityError,
    WorkerRegistry,
    WorkerState,
    informativeness,
    quality_mass,
)
from .telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    SpanRecord,
    Telemetry,
    TraceEvent,
)

__all__ = [
    "AdmitResult",
    "AllocatorSnapshot",
    "Assignment",
    "AssignmentBook",
    "AsyncIngestLoop",
    "BackendError",
    "BudgetAllocator",
    "CachedJQObjective",
    "CacheStats",
    "Campaign",
    "CampaignConfig",
    "CampaignEngine",
    "CampaignScheduler",
    "CampaignServer",
    "CapacityError",
    "EngineConfig",
    "EngineMetrics",
    "EngineTask",
    "Event",
    "EventQueue",
    "IngestStats",
    "IngestionClosed",
    "IngestionError",
    "IngestionOverflow",
    "IntakeQueue",
    "InterleavingSchedule",
    "LeaseCoordinator",
    "LoopMailbox",
    "MemoryBackend",
    "NULL_TELEMETRY",
    "NoOpenOffer",
    "NullTelemetry",
    "ProcPoolError",
    "ROUTING_POLICIES",
    "SQLiteBackend",
    "SchedulerStats",
    "ServerError",
    "Shard",
    "ShardProcessPool",
    "ShardRegistryView",
    "ShardWorkState",
    "SpanRecord",
    "ShardSnapshot",
    "ShardedCampaignEngine",
    "ShardedScheduler",
    "ShardingConfig",
    "StaleEpochError",
    "StateBackend",
    "SubstituteIndex",
    "TaskArrival",
    "TaskComplete",
    "TaskRecord",
    "Telemetry",
    "TraceEvent",
    "VoteArrival",
    "WorkerRegistry",
    "WorkerState",
    "adaptive_quantization",
    "informativeness",
    "linear_best_substitute",
    "load_cache_file",
    "partition_members",
    "quality_mass",
    "save_cache_file",
]
