"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``jq``             compute Jury Quality for a quality vector
``select``         solve JSP over a pool CSV under a budget
``table``          budget-quality table (Figure 1 style) for a pool CSV
``frontier``       cost-JQ Pareto frontier for a pool CSV
``simulate-pool``  generate a synthetic Section-6.1.1 pool CSV
``experiment``     run one of the paper's figure/table drivers
``engine``         run a simulated campaign through the serving engine
``trace``          inspect Chrome-trace files written by ``engine``

Every command reads/writes plain CSV/JSON (see :mod:`repro.io`), so the
CLI composes with shell pipelines and spreadsheets.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

import numpy as np

from .experiments import (
    run_fig1,
    run_fig6a,
    run_fig6b,
    run_fig6c,
    run_fig6d,
    run_fig7a,
    run_fig7b,
    run_fig8a,
    run_fig8b,
    run_fig9a,
    run_fig9b,
    run_fig9c,
    run_fig9d,
    run_table3,
)
from .engine import (
    ROUTING_POLICIES,
    Campaign,
    CampaignConfig,
    CampaignServer,
    EngineTask,
    SQLiteBackend,
)
from .frontier import exact_frontier, sampled_frontier
from .io import load_pool_csv, save_pool_csv
from .quality import jury_quality
from .selection import (
    AnnealingSelector,
    ExhaustiveSelector,
    GreedyQualitySelector,
    GreedyRatioSelector,
    JQObjective,
    MVJSSelector,
    budget_quality_table,
)
from .simulation import SyntheticPoolConfig, generate_pool
from .voting import make_strategy

_EXPERIMENTS = {
    "fig1": lambda: run_fig1(),
    "fig6a": lambda: run_fig6a(reps=3, epsilon=1e-6),
    "fig6b": lambda: run_fig6b(reps=3, epsilon=1e-6),
    "fig6c": lambda: run_fig6c(reps=3, epsilon=1e-6),
    "fig6d": lambda: run_fig6d(reps=3, epsilon=1e-6),
    "fig7a": lambda: run_fig7a(reps=3),
    "fig7b": lambda: run_fig7b(),
    "table3": lambda: run_table3(reps=10),
    "fig8a": lambda: run_fig8a(reps=10),
    "fig8b": lambda: run_fig8b(reps=10),
    "fig9a": lambda: run_fig9a(reps=10),
    "fig9b": lambda: run_fig9b(reps=20),
    "fig9c": lambda: run_fig9c(reps=100),
    "fig9d": lambda: run_fig9d(),
}

_SELECTORS = {
    "annealing": lambda obj: AnnealingSelector(obj, restarts=3),
    "exhaustive": ExhaustiveSelector,
    "mvjs": lambda obj: MVJSSelector(),
    "greedy-quality": GreedyQualitySelector,
    "greedy-ratio": GreedyRatioSelector,
}


def _parse_floats(text: str) -> list[float]:
    try:
        return [float(x) for x in text.split(",") if x.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad float list {text!r}") from exc


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad integer {text!r}") from exc
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad integer {text!r}") from exc
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad float {text!r}") from exc
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _quantization(text: str):
    """``auto`` | ``0`` (exact keys) | grid steps per unit."""
    if text == "auto":
        return "auto"
    value = _nonnegative_int(text)
    return value or None


def _deprecated_flag(new_value, legacy_value, legacy_flag, new_flag, default):
    """Resolve a renamed flag: the new spelling wins; the old one still
    works but warns on stderr (deprecation, not removal)."""
    if legacy_value is not None:
        print(
            f"warning: {legacy_flag} is deprecated; use {new_flag}",
            file=sys.stderr,
        )
        if new_value is None:
            return legacy_value
    if new_value is not None:
        return new_value
    return default


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal jury selection in crowdsourcing (EDBT 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_jq = sub.add_parser("jq", help="compute Jury Quality")
    p_jq.add_argument("--qualities", type=_parse_floats, required=True,
                      help="comma-separated worker qualities")
    p_jq.add_argument("--alpha", type=float, default=0.5,
                      help="prior Pr(t=0), default 0.5")
    p_jq.add_argument("--strategy", default="BV",
                      help="voting strategy name (default BV)")
    p_jq.add_argument("--method", default="auto",
                      choices=["auto", "exact", "bucket"])
    p_jq.add_argument("--num-buckets", type=int, default=50)

    p_select = sub.add_parser("select", help="solve JSP over a pool CSV")
    p_select.add_argument("--pool", required=True, help="pool CSV path")
    p_select.add_argument("--budget", type=float, required=True)
    p_select.add_argument("--alpha", type=float, default=0.5)
    p_select.add_argument("--selector", default="annealing",
                          choices=sorted(_SELECTORS))
    p_select.add_argument("--seed", type=int, default=None)

    p_table = sub.add_parser("table", help="budget-quality table")
    p_table.add_argument("--pool", required=True)
    p_table.add_argument("--budgets", type=_parse_floats, required=True)
    p_table.add_argument("--alpha", type=float, default=0.5)
    p_table.add_argument("--selector", default="annealing",
                         choices=sorted(_SELECTORS))
    p_table.add_argument("--seed", type=int, default=None)

    p_frontier = sub.add_parser("frontier", help="cost-JQ Pareto frontier")
    p_frontier.add_argument("--pool", required=True)
    p_frontier.add_argument("--alpha", type=float, default=0.5)
    p_frontier.add_argument(
        "--budgets", type=_parse_floats, default=None,
        help="sample at these budgets (default: exact for small pools)")
    p_frontier.add_argument("--seed", type=int, default=None)

    p_sim = sub.add_parser("simulate-pool", help="generate a synthetic pool")
    p_sim.add_argument("--out", required=True, help="output CSV path")
    p_sim.add_argument("--num-workers", type=int, default=50)
    p_sim.add_argument("--quality-mean", type=float, default=0.7)
    p_sim.add_argument("--quality-var", type=float, default=0.05)
    p_sim.add_argument("--cost-mean", type=float, default=0.05)
    p_sim.add_argument("--cost-sd", type=float, default=0.2)
    p_sim.add_argument("--seed", type=int, default=None)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))

    p_eng = sub.add_parser(
        "engine", help="run a simulated campaign through the serving engine")
    p_eng.add_argument("--pool", default=None,
                       help="pool CSV (default: synthetic pool)")
    p_eng.add_argument("--num-workers", type=int, default=50,
                       help="synthetic pool size when --pool is omitted")
    p_eng.add_argument("--num-tasks", type=int, default=1000)
    p_eng.add_argument("--budget", type=float, required=True,
                       help="total campaign budget")
    p_eng.add_argument("--capacity", type=int, default=4,
                       help="max concurrent jury seats per worker")
    p_eng.add_argument("--batch-size", type=int, default=25)
    p_eng.add_argument("--frontier-pool-size", type=_positive_int,
                       default=None,
                       help="per-batch candidate pool for the exact "
                            "frontier (default 10, max 20; >14 builds "
                            "through the streamed lattice sweep)")
    p_eng.add_argument("--alpha", type=float, default=0.5)
    p_eng.add_argument("--confidence", type=float, default=0.97,
                       help="early-stop confidence target")
    p_eng.add_argument("--reestimate-every", type=int, default=0,
                       help="re-fit worker qualities every N completions "
                            "(0 = off)")
    p_eng.add_argument("--quantization", type=_quantization, default="auto",
                       help="JQ-cache key grid steps (0 = exact keys; "
                            "'auto' derives the grid from the bucket "
                            "resolution)")
    p_eng.add_argument("--num-shards", type=_positive_int, default=None,
                       help="worker-pool shards (1 = unsharded engine)")
    p_eng.add_argument("--shards", type=_positive_int, default=None,
                       help=argparse.SUPPRESS)  # deprecated: --num-shards
    p_eng.add_argument("--routing-policy", default=None,
                       choices=ROUTING_POLICIES,
                       help="task-to-shard routing policy")
    p_eng.add_argument("--shard-policy", default=None,
                       choices=ROUTING_POLICIES,
                       help=argparse.SUPPRESS)  # deprecated: --routing-policy
    p_eng.add_argument("--cache-max-entries", type=_nonnegative_int,
                       default=0,
                       help="LRU bound per JQ cache (0 = unbounded)")
    p_eng.add_argument("--backend", default="memory",
                       choices=("memory", "sqlite"),
                       help="campaign state backend (sqlite persists the "
                            "campaign to --state-file)")
    p_eng.add_argument("--state-file", default=None,
                       help="SQLite state file (required with "
                            "--backend sqlite)")
    p_eng.add_argument("--resume", action="store_true",
                       help="resume the campaign checkpointed in "
                            "--state-file instead of starting fresh")
    p_eng.add_argument("--run-until", type=_positive_int, default=None,
                       help="pause after N completed tasks (with a sqlite "
                            "backend the paused state is checkpointed, so "
                            "--resume continues it)")
    p_eng.add_argument("--cache-file", default=None,
                       help="JQ-cache JSON: imported before a fresh run "
                            "when the file exists, exported after every "
                            "run — ships a warmed cache between campaigns")
    p_eng.add_argument("--checkpoint-every", type=_nonnegative_int,
                       default=0,
                       help="checkpoint the campaign to its backend after "
                            "every N completed tasks (0 = only the final "
                            "checkpoint; needs --backend sqlite to "
                            "survive the process)")
    p_eng.add_argument("--jq-kernel", default="batch",
                       choices=("batch", "scalar"),
                       help="JQ evaluation path for scheduler frontiers "
                            "(byte-identical results; 'scalar' exists "
                            "for benchmarking)")
    p_eng.add_argument("--ingestion", default="sync",
                       choices=("sync", "async"),
                       help="arrival intake: 'async' streams tasks "
                            "through a thread-safe bounded intake queue "
                            "(byte-identical to sync for pre-submitted "
                            "campaigns)")
    p_eng.add_argument("--parallel-shards", type=_nonnegative_int,
                       default=0,
                       help="dispatch shard admits on a thread pool of "
                            "this many workers (0 = sequential; "
                            "decisions are byte-identical either way; "
                            "needs --num-shards > 1 to matter)")
    p_eng.add_argument("--dispatch", default="threads",
                       choices=("threads", "processes"),
                       help="shard admit dispatch: 'processes' ships "
                            "each shard's round to a persistent worker "
                            "process (byte-identical decisions; needs "
                            "--num-shards > 1 to matter)")
    p_eng.add_argument("--vote-fanout", type=_nonnegative_int, default=0,
                       help="simulate concurrent same-time vote "
                            "arrivals on a thread pool of this many "
                            "workers (0 = sequential; byte-identical "
                            "either way)")
    p_eng.add_argument("--coordinate", default=None, metavar="PATH",
                       help="shared seat-lease SQLite file: engines "
                            "pointing at the same file share one worker "
                            "pool without double-seating")
    p_eng.add_argument("--lease-ttl", type=_positive_float, default=30.0,
                       help="seat-lease lifetime in seconds under "
                            "--coordinate (crashed engines' seats "
                            "return after this)")
    p_eng.add_argument("--telemetry", default=None,
                       choices=("off", "on"),
                       help="enable the telemetry hub (counters, spans, "
                            "trace); implied by --trace-out/--metrics-out")
    p_eng.add_argument("--trace-out", default=None,
                       help="write a Chrome trace-event JSON here after "
                            "the run (open in Perfetto or "
                            "chrome://tracing)")
    p_eng.add_argument("--metrics-out", default=None,
                       help="write a telemetry metrics snapshot (JSON) "
                            "here after the run")
    p_eng.add_argument("--metrics-interval", type=_positive_float,
                       default=None,
                       help="windowed-rate interval in seconds for "
                            "intake/throughput series (default 1.0)")
    p_eng.add_argument("--seed", type=int, default=None)

    p_srv = sub.add_parser(
        "serve",
        help="serve a campaign over HTTP (daemon mode: tasks, "
             "assignments, and votes arrive on the wire)")
    p_srv.add_argument("--pool", default=None,
                       help="pool CSV (default: synthetic pool)")
    p_srv.add_argument("--num-workers", type=int, default=50,
                       help="synthetic pool size when --pool is omitted")
    p_srv.add_argument("--budget", type=float, default=None,
                       help="total campaign budget (required unless "
                            "--resume, which restores it from the "
                            "checkpoint)")
    p_srv.add_argument("--capacity", type=int, default=4)
    p_srv.add_argument("--batch-size", type=int, default=25)
    p_srv.add_argument("--frontier-pool-size", type=_positive_int,
                       default=None,
                       help="per-batch candidate pool for the exact "
                            "frontier (default 10, max 20; >14 builds "
                            "through the streamed lattice sweep)")
    p_srv.add_argument("--alpha", type=float, default=0.5)
    p_srv.add_argument("--confidence", type=float, default=0.97,
                       help="early-stop confidence target")
    p_srv.add_argument("--num-shards", type=_positive_int, default=1,
                       help="worker-pool shards (1 = unsharded engine)")
    p_srv.add_argument("--routing-policy", default="hash",
                       choices=ROUTING_POLICIES)
    p_srv.add_argument("--dispatch", default="threads",
                       choices=("threads", "processes"),
                       help="shard admit dispatch: 'processes' ships "
                            "each shard's round to a persistent worker "
                            "process (needs --num-shards > 1 to matter)")
    p_srv.add_argument("--vote-fanout", type=_nonnegative_int, default=0,
                       help="process same-time simulated vote arrivals "
                            "on a thread pool of this many workers "
                            "(0 = sequential)")
    p_srv.add_argument("--coordinate", default=None, metavar="PATH",
                       help="shared seat-lease SQLite file: N 'repro "
                            "serve' processes pointing at the same file "
                            "share one worker pool without "
                            "double-seating (keep it separate from "
                            "--state-file)")
    p_srv.add_argument("--lease-ttl", type=_positive_float, default=30.0,
                       help="seat-lease lifetime in seconds under "
                            "--coordinate; serving renews at ttl/3, a "
                            "crashed engine's seats return after one "
                            "TTL")
    p_srv.add_argument("--vote-source", default="external",
                       choices=("external", "simulated"),
                       help="'external' publishes vote offers and takes "
                            "votes via POST /votes; 'simulated' draws "
                            "votes from worker qualities (tasks still "
                            "arrive via POST /tasks)")
    p_srv.add_argument("--backend", default="memory",
                       choices=("memory", "sqlite"))
    p_srv.add_argument("--state-file", default=None,
                       help="SQLite state file (required with "
                            "--backend sqlite)")
    p_srv.add_argument("--resume", action="store_true",
                       help="resume the campaign checkpointed in "
                            "--state-file instead of starting fresh")
    p_srv.add_argument("--checkpoint-every", type=_nonnegative_int,
                       default=0,
                       help="checkpoint after every N completed tasks "
                            "(0 = only on shutdown)")
    p_srv.add_argument("--host", default=None,
                       help="bind address (default: config serve_host, "
                            "127.0.0.1)")
    p_srv.add_argument("--port", type=_nonnegative_int, default=None,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: config serve_port, 8765)")
    p_srv.add_argument("--telemetry", default=None, choices=("off", "on"),
                       help="enable the telemetry hub; implied by "
                            "--trace-out/--metrics-out (GET /metrics "
                            "serves Prometheus text either way)")
    p_srv.add_argument("--trace-out", default=None,
                       help="write a Chrome trace-event JSON here on "
                            "shutdown (atomic tmp+rename)")
    p_srv.add_argument("--metrics-out", default=None,
                       help="write a telemetry metrics snapshot (JSON) "
                            "here every --metrics-interval and on "
                            "shutdown (atomic tmp+rename)")
    p_srv.add_argument("--metrics-interval", type=_positive_float,
                       default=None,
                       help="periodic --metrics-out flush interval in "
                            "seconds (default 1.0)")
    p_srv.add_argument("--seed", type=int, default=None)

    p_trace = sub.add_parser(
        "trace", help="inspect Chrome-trace files written by the engine")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsum = trace_sub.add_parser(
        "summarize",
        help="per-span duration stats and event counts for a trace file")
    p_tsum.add_argument("file", help="Chrome trace-event JSON path")
    p_tsum.add_argument("--top", type=_positive_int, default=20,
                        help="show at most this many span rows")

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "jq":
        strategy = make_strategy(args.strategy)
        jq = jury_quality(
            args.qualities,
            strategy,
            alpha=args.alpha,
            method=args.method,
            num_buckets=args.num_buckets,
        )
        print(f"JQ({args.strategy.upper()}, alpha={args.alpha:g}) = {jq:.6f}")
        return 0

    if args.command == "select":
        pool = load_pool_csv(args.pool)
        objective = JQObjective(alpha=args.alpha)
        selector = _SELECTORS[args.selector](objective)
        result = selector.select(
            pool, args.budget, rng=np.random.default_rng(args.seed)
        )
        ids = ", ".join(result.worker_ids) or "(empty)"
        print(f"jury: {{{ids}}}")
        print(f"jq: {result.jq:.6f}")
        print(f"cost: {result.cost:g} / budget {args.budget:g}")
        print(f"selector: {result.selector} "
              f"({result.evaluations} JQ evaluations, "
              f"{result.elapsed_seconds:.3f}s)")
        return 0

    if args.command == "table":
        pool = load_pool_csv(args.pool)
        objective = JQObjective(alpha=args.alpha)
        selector = _SELECTORS[args.selector](objective)
        table = budget_quality_table(
            pool, args.budgets, selector,
            rng=np.random.default_rng(args.seed),
        )
        print(table.render())
        return 0

    if args.command == "frontier":
        pool = load_pool_csv(args.pool)
        objective = JQObjective(alpha=args.alpha)
        if args.budgets is None:
            frontier = exact_frontier(pool, objective)
        else:
            frontier = sampled_frontier(
                pool, args.budgets, objective,
                rng=np.random.default_rng(args.seed),
            )
        kind = "exact" if frontier.exact else "sampled"
        print(f"# {kind} frontier, {len(frontier.points)} points")
        print(frontier.render())
        knee = frontier.knee()
        print(f"# knee: cost {knee.cost:g} at JQ {knee.jq:.2%}")
        return 0

    if args.command == "simulate-pool":
        config = SyntheticPoolConfig(
            num_workers=args.num_workers,
            quality_mean=args.quality_mean,
            quality_var=args.quality_var,
            cost_mean=args.cost_mean,
            cost_sd=args.cost_sd,
        )
        pool = generate_pool(config, np.random.default_rng(args.seed))
        save_pool_csv(pool, args.out)
        print(f"wrote {len(pool)} workers to {args.out}")
        return 0

    if args.command == "experiment":
        result = _EXPERIMENTS[args.name]()
        print(result.render())
        return 0

    if args.command == "engine":
        return _run_engine_command(args)

    if args.command == "serve":
        return _run_serve_command(args)

    if args.command == "trace":
        return _run_trace_summarize(args)

    raise AssertionError(f"unhandled command {args.command!r}")


def _run_engine_command(args) -> int:
    num_shards = _deprecated_flag(
        args.num_shards, args.shards, "--shards", "--num-shards", 1
    )
    routing_policy = _deprecated_flag(
        args.routing_policy, args.shard_policy,
        "--shard-policy", "--routing-policy", "hash",
    )
    backend = None
    if args.backend == "sqlite":
        if args.state_file is None:
            print("error: --backend sqlite requires --state-file",
                  file=sys.stderr)
            return 2
        backend = SQLiteBackend(args.state_file)
    if args.resume:
        if backend is None:
            print("error: --resume requires --backend sqlite --state-file",
                  file=sys.stderr)
            return 2
        campaign = Campaign.resume(backend)
    else:
        if backend is not None and backend.exists():
            print(
                f"error: {args.state_file} already holds a campaign "
                "checkpoint; pass --resume to continue it, or point "
                "--state-file at a new file",
                file=sys.stderr,
            )
            return 2
        rng = np.random.default_rng(args.seed)
        if args.pool is not None:
            pool = load_pool_csv(args.pool)
        else:
            # Cap qualities below 1: the clipped Gaussian otherwise
            # mints perfect workers and trivial single-vote juries.
            pool = generate_pool(
                SyntheticPoolConfig(
                    num_workers=args.num_workers, quality_ceiling=0.95
                ),
                rng,
            )
        # --trace-out / --metrics-out are useless without the hub, so
        # they imply telemetry unless the user said "off" explicitly.
        telemetry = args.telemetry
        if telemetry is None:
            telemetry = (
                "on" if (args.trace_out or args.metrics_out) else "off"
            )
        config = CampaignConfig(
            budget=args.budget,
            capacity=args.capacity,
            batch_size=args.batch_size,
            frontier_pool_size=args.frontier_pool_size or 10,
            alpha=args.alpha,
            confidence_target=args.confidence,
            reestimate_every=args.reestimate_every,
            quantization=args.quantization,
            cache_max_entries=args.cache_max_entries or None,
            jq_kernel=args.jq_kernel,
            checkpoint_every=args.checkpoint_every,
            ingestion=args.ingestion,
            parallel_shards=args.parallel_shards,
            dispatch=args.dispatch,
            vote_fanout=args.vote_fanout,
            coordinate_path=args.coordinate,
            lease_ttl=args.lease_ttl,
            telemetry=telemetry,
            trace_path=args.trace_out,
            metrics_interval=args.metrics_interval or 1.0,
            seed=args.seed,
            num_shards=num_shards,
            routing_policy=routing_policy,
        )
        campaign = Campaign.open(pool, config, backend=backend)
        # Truths must follow the declared prior, or the report's
        # realized-vs-predicted comparison is miscalibrated.
        truths = (rng.random(args.num_tasks) >= args.alpha).astype(int)
        campaign.submit(
            EngineTask(f"task-{i}", prior=args.alpha, ground_truth=int(t))
            for i, t in enumerate(truths)
        )
        if args.cache_file is not None and os.path.exists(args.cache_file):
            warmed = campaign.import_cache(args.cache_file)
            print(f"# warmed JQ cache: {warmed} entries from "
                  f"{args.cache_file}")
    try:
        metrics = campaign.run(until=args.run_until)
        if backend is not None:
            campaign.checkpoint()
        if args.cache_file is not None:
            exported = campaign.export_cache(args.cache_file)
            print(f"# exported JQ cache: {exported} entries to "
                  f"{args.cache_file}")
    finally:
        # Observability must survive a failed run: flush trace/metrics
        # from here so a crash mid-campaign still leaves the files
        # behind (atomic tmp+rename, so they are valid or absent —
        # never truncated).
        _write_observability(campaign, args.trace_out, args.metrics_out)
    if not campaign.done:
        note = (
            "checkpointed; rerun with --resume to continue"
            if backend is not None
            else "memory backend: paused state dies with this process"
        )
        print(f"# paused at {metrics.completed} completed tasks ({note})")
    print(metrics.render(budget=campaign.config.budget))
    campaign.close()
    return 0


def _atomic_write_json(path: str, payload: dict) -> None:
    """Write ``payload`` as JSON via tmp file + rename, so readers (and
    crashes) never observe a partially written file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _write_observability(campaign, trace_out, metrics_out,
                         quiet: bool = False) -> None:
    """Flush --trace-out / --metrics-out.  Runs from ``finally`` blocks
    and signal-shutdown paths, so it must never raise: a broken flush
    is reported to stderr, not allowed to mask the original error."""
    if trace_out is not None:
        try:
            if campaign.telemetry.enabled:
                # Fresh runs already wrote config.trace_path during
                # run(); resumed campaigns carry no CLI-supplied
                # trace_path, so write explicitly.  Rewriting is
                # idempotent.
                count = campaign.write_trace(trace_out)
                if not quiet:
                    print(f"# wrote trace: {count} events to {trace_out}")
            else:
                print(
                    "warning: --trace-out ignored: campaign was opened "
                    "with telemetry off (resumed checkpoint?)",
                    file=sys.stderr,
                )
        except Exception as exc:
            print(f"warning: could not write {trace_out}: {exc}",
                  file=sys.stderr)
    if metrics_out is not None:
        try:
            _atomic_write_json(metrics_out, campaign.snapshot_metrics())
            if not quiet:
                print(f"# wrote metrics snapshot to {metrics_out}")
        except Exception as exc:
            print(f"warning: could not write {metrics_out}: {exc}",
                  file=sys.stderr)


def _run_serve_command(args) -> int:
    import signal

    backend = None
    if args.backend == "sqlite":
        if args.state_file is None:
            print("error: --backend sqlite requires --state-file",
                  file=sys.stderr)
            return 2
        backend = SQLiteBackend(args.state_file)
    if args.resume:
        if backend is None:
            print("error: --resume requires --backend sqlite --state-file",
                  file=sys.stderr)
            return 2
        campaign = Campaign.resume(backend)
        if campaign.config.ingestion != "async":
            print(
                "error: checkpointed campaign was opened with "
                "ingestion='sync'; serving requires the async intake",
                file=sys.stderr,
            )
            campaign.close()
            return 2
    else:
        if args.budget is None:
            print("error: --budget is required (omit it only with "
                  "--resume, which restores it from the checkpoint)",
                  file=sys.stderr)
            return 2
        if backend is not None and backend.exists():
            print(
                f"error: {args.state_file} already holds a campaign "
                "checkpoint; pass --resume to continue it, or point "
                "--state-file at a new file",
                file=sys.stderr,
            )
            return 2
        rng = np.random.default_rng(args.seed)
        if args.pool is not None:
            pool = load_pool_csv(args.pool)
        else:
            pool = generate_pool(
                SyntheticPoolConfig(
                    num_workers=args.num_workers, quality_ceiling=0.95
                ),
                rng,
            )
        telemetry = args.telemetry
        if telemetry is None:
            telemetry = (
                "on" if (args.trace_out or args.metrics_out) else "off"
            )
        config = CampaignConfig(
            budget=args.budget,
            capacity=args.capacity,
            batch_size=args.batch_size,
            frontier_pool_size=args.frontier_pool_size or 10,
            alpha=args.alpha,
            confidence_target=args.confidence,
            checkpoint_every=args.checkpoint_every,
            ingestion="async",
            telemetry=telemetry,
            metrics_interval=args.metrics_interval or 1.0,
            vote_source=args.vote_source,
            seed=args.seed,
            num_shards=args.num_shards,
            routing_policy=args.routing_policy,
            dispatch=args.dispatch,
            vote_fanout=args.vote_fanout,
            coordinate_path=args.coordinate,
            lease_ttl=args.lease_ttl,
            serve_host=args.host if args.host is not None else "127.0.0.1",
            serve_port=args.port if args.port is not None else 8765,
        )
        campaign = Campaign.open(pool, config, backend=backend)

    server = CampaignServer(campaign, host=args.host, port=args.port)

    # Graceful shutdown: the first SIGINT/SIGTERM pauses the serving
    # loop (serve() returns, we checkpoint and flush observability,
    # exit 0 — --resume continues the campaign).  A second signal
    # force-exits immediately: the last checkpoint is already durable
    # (SQLite WAL), so impatience cannot corrupt state, only lose
    # whatever happened since.
    signal_count = {"n": 0}

    def _on_signal(signum, frame):
        signal_count["n"] += 1
        if signal_count["n"] >= 2:
            os._exit(130)
        server.stop()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }

    tick = None
    if args.metrics_out is not None:
        def tick():
            _write_observability(campaign, None, args.metrics_out,
                                 quiet=True)

    print(f"# serving campaign on {server.url} "
          f"(vote_source={campaign.config.vote_source}, "
          f"num_shards={campaign.config.num_shards})")
    print("# POST /tasks, GET /assignments?worker=, POST /votes, "
          "GET /status, GET /metrics, POST /admin/checkpoint, "
          "POST /admin/close")
    try:
        with server:
            metrics = server.serve(
                tick=tick,
                tick_interval=args.metrics_interval or 1.0,
            )
        if backend is not None:
            campaign.checkpoint()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        _write_observability(campaign, args.trace_out, args.metrics_out)
    if not campaign.done:
        note = (
            "checkpointed; rerun with --resume to continue"
            if backend is not None
            else "memory backend: paused state dies with this process"
        )
        print(f"# paused at {metrics.completed} completed tasks ({note})")
    print(metrics.render(budget=campaign.config.budget))
    campaign.close()
    return 0


def _run_trace_summarize(args) -> int:
    """Digest a Chrome trace-event file: per-span duration stats
    (count / total / mean / max, in ms) and instant-event counts."""
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.file} is not valid JSON: {exc}",
              file=sys.stderr)
        return 2
    # Both container shapes Chrome accepts: the object form (what the
    # engine writes) and the bare event array.
    events = data.get("traceEvents") if isinstance(data, dict) else data
    if not isinstance(events, list):
        print(f"error: {args.file} has no traceEvents list",
              file=sys.stderr)
        return 2

    spans: dict[str, list[float]] = {}
    instants: dict[str, int] = {}
    skipped = 0
    for event in events:
        if not isinstance(event, dict):
            skipped += 1
            continue
        phase = event.get("ph")
        name = str(event.get("name", "?"))
        if phase == "X":
            spans.setdefault(name, []).append(
                float(event.get("dur", 0)) / 1000.0
            )
        elif phase == "i" or phase == "I":
            instants[name] = instants.get(name, 0) + 1
        elif phase != "M":  # metadata rows are expected, not "skipped"
            skipped += 1

    total_spans = sum(len(v) for v in spans.values())
    print(f"trace: {args.file}")
    print(f"  {total_spans} spans, {sum(instants.values())} instant "
          f"events" + (f", {skipped} unrecognized" if skipped else ""))
    if spans:
        print("spans (ms):")
        header = (f"  {'name':<24} {'count':>6} {'total':>10} "
                  f"{'mean':>9} {'max':>9}")
        print(header)
        ranked = sorted(
            spans.items(), key=lambda kv: -sum(kv[1])
        )[: args.top]
        for name, durations in ranked:
            total = sum(durations)
            print(f"  {name:<24} {len(durations):>6} {total:>10.3f} "
                  f"{total / len(durations):>9.4f} "
                  f"{max(durations):>9.4f}")
        if len(spans) > args.top:
            print(f"  ... {len(spans) - args.top} more span names "
                  f"(--top to widen)")
    if instants:
        print("events:")
        for name, count in sorted(
            instants.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            print(f"  {name:<24} {count:>6}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
