"""Cost-quality Pareto frontiers over juries.

The budget–quality table (Figure 1) samples the cost/JQ trade-off at a
handful of provider-chosen budgets.  The *frontier* is the full curve:
every jury that is not dominated — no other jury is simultaneously
cheaper and higher-JQ.  Small pools admit the exact frontier by
enumeration; larger pools get a sampled frontier from repeated
annealing runs.

The frontier subsumes the budget table: the optimal jury for any
budget B is the most expensive frontier point with cost <= B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .core.exceptions import EnumerationLimitError
from .core.jury import Jury
from .core.worker import WorkerPool
from .quality.stream import streamed_frontier_jq
from .selection.annealing import AnnealingSelector
from .selection.base import JQObjective


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated jury."""

    cost: float
    jq: float
    worker_ids: tuple[str, ...]


@dataclass(frozen=True)
class Frontier:
    """A cost-ascending, JQ-ascending sequence of non-dominated juries."""

    points: tuple[FrontierPoint, ...]
    exact: bool

    def best_under(self, budget: float) -> FrontierPoint | None:
        """The optimal frontier point affordable at ``budget`` (None
        when even the cheapest point exceeds it)."""
        best = None
        for point in self.points:
            if point.cost <= budget + 1e-12:
                best = point
            else:
                break
        return best

    def knee(self) -> FrontierPoint:
        """The point of maximum curvature — the "stop paying here"
        heuristic.  Computed as the point furthest above the chord
        from the first to the last frontier point."""
        if not self.points:
            raise ValueError("empty frontier")
        if len(self.points) <= 2:
            return self.points[-1]
        costs = np.array([p.cost for p in self.points])
        jqs = np.array([p.jq for p in self.points])
        c_span = costs[-1] - costs[0]
        j_span = jqs[-1] - jqs[0]
        if c_span <= 0 or j_span <= 0:
            return self.points[-1]
        # Height above the chord, in normalized coordinates.
        t = (costs - costs[0]) / c_span
        height = (jqs - jqs[0]) / j_span - t
        return self.points[int(np.argmax(height))]

    def render(self) -> str:
        header = f"{'Cost':>10} | {'JQ':>8} | Jury"
        lines = [header, "-" * len(header)]
        for point in self.points:
            jury = "{" + ", ".join(point.worker_ids) + "}"
            lines.append(f"{point.cost:>10.4g} | {point.jq:>7.2%} | {jury}")
        return "\n".join(lines)


def _pareto_filter(
    candidates: Sequence[tuple[float, float, tuple[str, ...]]],
) -> tuple[FrontierPoint, ...]:
    """Keep the non-dominated (cost, jq) pairs, cheapest first."""
    ordered = sorted(candidates, key=lambda c: (c[0], -c[1]))
    points: list[FrontierPoint] = []
    best_jq = -np.inf
    eps = 1e-12
    for cost, jq, ids in ordered:
        if jq > best_jq + eps:
            points.append(FrontierPoint(cost, jq, ids))
            best_jq = jq
    return tuple(points)


def exact_frontier(
    pool: WorkerPool,
    objective: JQObjective | None = None,
    max_pool: int = 20,
    implementation: str = "auto",
) -> Frontier:
    """The exact Pareto frontier by full enumeration (small pools).

    ``implementation`` selects how the ``2^n - 1`` candidate juries are
    scored: ``"batch"`` pushes the whole subset lattice through the
    batched JQ kernels (one shared sweep instead of per-jury dynamic
    programs) when the pool fits the dense lattice
    (``ALL_SUBSETS_MAX`` workers) and streams it level by level
    otherwise, ``"stream"`` forces the streamed level-by-level sweep
    (:func:`repro.quality.stream.streamed_frontier_jq` — memory bounded
    by the widest lattice level instead of ``2^n``), ``"scalar"`` is
    the historical one-jury-at-a-time loop, and ``"auto"`` (default)
    batches whenever the objective supports it.  All paths produce the
    identical frontier — same points, same floats — pinned by the
    regression tests; the choice is purely a performance/memory lever
    (``benchmarks/bench_frontier_kernel.py``,
    ``benchmarks/bench_streamed_frontier.py``).
    """
    if implementation not in ("auto", "batch", "scalar", "stream"):
        raise ValueError(f"unknown implementation {implementation!r}")
    n = len(pool)
    if n > max_pool:
        raise EnumerationLimitError(
            f"exact frontier enumerates 2^{n} juries; pool size {n} "
            f"exceeds the limit {max_pool}"
        )
    if objective is None:
        objective = JQObjective()
    supports_batch = getattr(objective, "supports_batch", False)
    if implementation == "stream" and not supports_batch:
        raise ValueError(
            "implementation='stream' needs a batch-capable objective "
            "(JQObjective.batch_qualities)"
        )
    use_batch = implementation in ("batch", "stream") or (
        implementation == "auto" and supports_batch
    )
    workers = pool.workers
    costs = pool.costs
    if not use_batch:
        candidates = []
        for mask in range(1, 1 << n):
            members = [i for i in range(n) if mask >> i & 1]
            jury = Jury(workers[i] for i in members)
            candidates.append(
                (float(costs[members].sum()), objective(jury), jury.worker_ids)
            )
        return Frontier(_pareto_filter(candidates), exact=True)

    ids = tuple(w.worker_id for w in workers)
    qualities = pool.qualities
    jqs = (
        None
        if implementation == "stream"
        else objective.all_subsets(qualities)
    )
    candidates = []
    if jqs is not None:
        objective.evaluations += (1 << n) - 1
        jq_list = jqs.tolist()
        cost_list = costs.tolist()
        # Subset ids and costs extend the parent subset's (drop the
        # highest bit), so the whole enumeration is O(1) Python work
        # per mask.  Cost parity with the scalar path is bit-exact:
        # numpy sums sequentially below 8 elements, which the ascending
        # DP reproduces; from 8 members on (where numpy switches to
        # unrolled partial sums) the scalar summation is kept.
        sub_ids: list[tuple[str, ...]] = [()] * (1 << n)
        sub_cost: list[float] = [0.0] * (1 << n)
        sub_size: list[int] = [0] * (1 << n)
        for mask in range(1, 1 << n):
            high = mask.bit_length() - 1
            parent = mask ^ (1 << high)
            size = sub_size[parent] + 1
            sub_size[mask] = size
            member_ids = sub_ids[parent] + (ids[high],)
            sub_ids[mask] = member_ids
            if size < 8:
                cost = sub_cost[parent] + cost_list[high]
            else:
                cost = float(
                    costs[[i for i in range(n) if mask >> i & 1]].sum()
                )
            sub_cost[mask] = cost
            candidates.append((cost, jq_list[mask], member_ids))
    else:
        # Pool past the dense lattice (or streaming forced): sweep the
        # lattice level by level, keeping only Pareto survivors — the
        # memory-bounded path that admits pools up to ``max_pool``.
        streamed = streamed_frontier_jq(
            qualities,
            costs,
            alpha=getattr(objective, "alpha", 0.5),
            batch_jq=objective.batch_qualities,
        )
        for mask, cost, jq in zip(
            streamed.masks.tolist(),
            streamed.costs.tolist(),
            streamed.jqs.tolist(),
        ):
            member_ids = tuple(ids[i] for i in range(n) if mask >> i & 1)
            candidates.append((cost, jq, member_ids))
    return Frontier(_pareto_filter(candidates), exact=True)


def sampled_frontier(
    pool: WorkerPool,
    budgets: Sequence[float],
    objective: JQObjective | None = None,
    rng: np.random.Generator | None = None,
    restarts: int = 2,
) -> Frontier:
    """An approximate frontier from annealing runs at the given budgets.

    Each budget contributes its best jury; dominated results are
    filtered out, so the returned curve is monotone even when some
    annealing runs underperform.
    """
    if objective is None:
        objective = JQObjective()
    if rng is None:
        rng = np.random.default_rng()
    selector = AnnealingSelector(objective, restarts=restarts)
    candidates = []
    for budget in sorted(float(b) for b in budgets):
        result = selector.select(pool, budget, rng=rng)
        if result.jury.size:
            candidates.append((result.cost, result.jq, result.worker_ids))
    return Frontier(_pareto_filter(candidates), exact=False)
