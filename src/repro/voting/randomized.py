"""Randomized strategies: Randomized Majority Voting and Random Ballot.

Randomized Majority Voting (RMV, Example 1) returns 0 with probability
proportional to the number of 0-votes: ``p = (1/n) * sum_i (1 - v_i)``.

Random Ballot Voting (RBV) draws one ballot uniformly at random and
returns it; for anonymous binary votes this is the same output
distribution as RMV *given the votes*, so to match the paper's
experiments — where RBV's JQ is pinned at exactly 50% — we implement the
purer "random ballot" reading used there: return 0 or 1 uniformly at
random, ignoring the votes (footnote 4: "RBV randomly returns 0 or 1
with 50%").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR
from .base import RandomizedStrategy, _as_quality_vector


class RandomizedMajorityVoting(RandomizedStrategy):
    """RMV: vote-share-proportional randomized majority (Example 1)."""

    name = "RMV"

    def prob_zero(
        self,
        votes: Sequence[int],
        jury_or_qualities: Jury | Sequence[float],
        alpha: float = UNINFORMATIVE_PRIOR,
    ) -> float:
        qualities = _as_quality_vector(jury_or_qualities)
        arr = self._check_votes(votes, qualities)
        return float(np.mean(arr == 0))


class RandomBallotVoting(RandomizedStrategy):
    """RBV: a fair coin, independent of the votes (paper footnote 4)."""

    name = "RBV"

    def prob_zero(
        self,
        votes: Sequence[int],
        jury_or_qualities: Jury | Sequence[float],
        alpha: float = UNINFORMATIVE_PRIOR,
    ) -> float:
        qualities = _as_quality_vector(jury_or_qualities)
        self._check_votes(votes, qualities)
        return 0.5
