"""Triadic Consensus (Goel & Lee [2]) as a randomized voting strategy.

The original triadic-consensus protocol repeatedly groups three random
participants and lets the triad's majority opinion survive into the
next round, until a single opinion remains.  Applied to an already
collected anonymous binary vote vector, the protocol's output
distribution depends only on the *count* of zero-votes, so the
probability of returning 0 can be computed exactly by dynamic
programming over states ``(#votes-remaining, #zero-votes)``:

* draw 3 of the remaining ballots uniformly without replacement
  (hypergeometric), replace them with 1 ballot carrying their majority;
* when 2 ballots remain, draw one uniformly;
* when 1 ballot remains, return it.

This keeps the strategy a proper Definition-2 randomized strategy with
an analytic ``prob_zero`` (no Monte Carlo), which the exact-JQ machinery
requires.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR
from .base import RandomizedStrategy, _as_quality_vector


@lru_cache(maxsize=100_000)
def _prob_zero_from_counts(n: int, zeros: int) -> float:
    """Probability the triadic reduction of ``n`` ballots, ``zeros`` of
    which are 0, terminates with a 0 ballot."""
    if n == 1:
        return float(zeros)
    if n == 2:
        return zeros / 2.0
    ones = n - zeros
    total_triples = n * (n - 1) * (n - 2) / 6.0
    prob = 0.0
    # k = number of zero-ballots in the sampled triad.
    for k in range(0, 4):
        if k > zeros or (3 - k) > ones:
            continue
        ways = _comb(zeros, k) * _comb(ones, 3 - k)
        p_draw = ways / total_triples
        if p_draw == 0.0:
            continue
        survives_zero = 1 if k >= 2 else 0
        new_zeros = zeros - k + survives_zero
        prob += p_draw * _prob_zero_from_counts(n - 2, new_zeros)
    return prob


def _comb(n: int, k: int) -> float:
    if k < 0 or k > n:
        return 0.0
    result = 1.0
    for i in range(k):
        result = result * (n - i) / (i + 1)
    return result


class TriadicConsensus(RandomizedStrategy):
    """Triadic consensus over the collected ballots (randomized)."""

    name = "TRIADIC"

    def prob_zero(
        self,
        votes: Sequence[int],
        jury_or_qualities: Jury | Sequence[float],
        alpha: float = UNINFORMATIVE_PRIOR,
    ) -> float:
        qualities = _as_quality_vector(jury_or_qualities)
        arr = self._check_votes(votes, qualities)
        zeros = int(np.sum(arr == 0))
        return _prob_zero_from_counts(arr.size, zeros)
