"""Voting strategies (Section 3, Table 2).

Deterministic: Majority Voting (MV), Half Voting, Bayesian Voting (BV),
Weighted Majority Voting (WMV).  Randomized: Randomized Majority Voting
(RMV), Random Ballot Voting (RBV), Randomized Weighted Majority Voting
(RWMV), Triadic Consensus.

BV is the optimal strategy with respect to Jury Quality (Theorem 1 /
Corollary 1); the others exist as comparison baselines and to make the
optimality claim falsifiable in tests.
"""

from .base import DeterministicStrategy, RandomizedStrategy, VotingStrategy
from .bayesian import BayesianVoting, log_likelihoods, posterior_zero
from .majority import HalfVoting, MajorityVoting
from .randomized import RandomBallotVoting, RandomizedMajorityVoting
from .registry import (
    all_strategies,
    available_strategies,
    make_strategy,
    register_strategy,
)
from .triadic import TriadicConsensus
from .weighted import (
    RandomizedWeightedMajorityVoting,
    WeightedMajorityVoting,
    linear_weight,
    log_odds_weight,
)

__all__ = [
    "BayesianVoting",
    "DeterministicStrategy",
    "HalfVoting",
    "MajorityVoting",
    "RandomBallotVoting",
    "RandomizedMajorityVoting",
    "RandomizedStrategy",
    "RandomizedWeightedMajorityVoting",
    "TriadicConsensus",
    "VotingStrategy",
    "WeightedMajorityVoting",
    "all_strategies",
    "available_strategies",
    "linear_weight",
    "log_likelihoods",
    "log_odds_weight",
    "make_strategy",
    "posterior_zero",
    "register_strategy",
]
