"""Majority-style deterministic strategies: MV and Half Voting.

Majority Voting (Example 1 in the paper) returns 0 when at least
``(n + 1) / 2`` workers vote 0 — i.e. ``sum(1 - v_i) >= (n + 1) / 2`` —
and 1 otherwise.  For odd juries this is the familiar strict majority;
for even juries the paper's formulation breaks exact ties in favour
of 1.

Half Voting [28] is the variant that returns 0 as soon as *half* the
votes (rather than a strict majority) are 0, i.e. it breaks even-jury
ties in favour of 0.  On odd juries the two coincide.
"""

from __future__ import annotations

import numpy as np

from .base import DeterministicStrategy


class MajorityVoting(DeterministicStrategy):
    """Majority Voting (MV), the strategy used by the Cao et al. baseline.

    ``MV(V) = 0`` iff ``sum_i (1 - v_i) >= (n + 1) / 2``; ties on even
    juries therefore resolve to 1, exactly as in the paper's Example 1.
    """

    name = "MV"

    def decide_deterministic(
        self, votes: np.ndarray, qualities: np.ndarray, alpha: float
    ) -> int:
        n = votes.size
        zeros = int(np.sum(votes == 0))
        return 0 if zeros >= (n + 1) / 2.0 else 1


class HalfVoting(DeterministicStrategy):
    """Half Voting: returns 0 when at least half the votes are 0.

    Differs from MV only on even-size juries with an exact tie, which it
    resolves to 0.
    """

    name = "HALF"

    def decide_deterministic(
        self, votes: np.ndarray, qualities: np.ndarray, alpha: float
    ) -> int:
        n = votes.size
        zeros = int(np.sum(votes == 0))
        return 0 if zeros >= n / 2.0 else 1
