"""Voting-strategy interface (Section 3.1).

A voting strategy ``S(V, J, alpha)`` estimates the latent truth of a
binary task from a jury's votes.  The paper classifies strategies as

* *deterministic* — the result is a function of ``(V, J, alpha)``
  (Definition 1), or
* *randomized* — the result is 0 with some probability ``p`` and 1 with
  ``1 - p`` (Definition 2).

Both classes are captured by one interface: :meth:`VotingStrategy.prob_zero`
returns ``E[1{S(V) = 0}]``, which is 0 or 1 for deterministic strategies
and ``p`` in [0, 1] for randomized ones.  The generic JQ machinery in
:mod:`repro.quality.exact` needs nothing else, which is what makes the
Theorem-1 optimality claim directly testable against every strategy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR, validate_prior


def _as_quality_vector(jury_or_qualities: Jury | Sequence[float]) -> np.ndarray:
    """Accept either a Jury or a raw quality sequence."""
    if isinstance(jury_or_qualities, Jury):
        return jury_or_qualities.qualities
    return np.asarray(jury_or_qualities, dtype=float)


class VotingStrategy(ABC):
    """Abstract voting strategy for binary decision-making tasks."""

    #: Short machine-friendly identifier (e.g. ``"MV"``).
    name: str = "abstract"

    #: True for Definition-1 strategies, False for Definition-2.
    is_deterministic: bool = True

    @abstractmethod
    def prob_zero(
        self,
        votes: Sequence[int],
        jury_or_qualities: Jury | Sequence[float],
        alpha: float = UNINFORMATIVE_PRIOR,
    ) -> float:
        """Return ``E[1{S(V) = 0}]``: the probability that the strategy
        outputs label 0 given the observed votes.

        Deterministic strategies return exactly 0.0 or 1.0.
        """

    def decide(
        self,
        votes: Sequence[int],
        jury_or_qualities: Jury | Sequence[float],
        alpha: float = UNINFORMATIVE_PRIOR,
        rng: np.random.Generator | None = None,
    ) -> int:
        """Return a concrete label (0 or 1).

        Deterministic strategies ignore ``rng``.  Randomized strategies
        sample from their output distribution; they require ``rng`` only
        when the decision is genuinely random (``0 < p < 1``).
        """
        p = self.prob_zero(votes, jury_or_qualities, validate_prior(alpha))
        if p >= 1.0:
            return 0
        if p <= 0.0:
            return 1
        if rng is None:
            raise ValueError(
                f"{self.name}: randomized decision requires an rng "
                f"(p(zero) = {p:.4g})"
            )
        return 0 if rng.random() < p else 1

    # ------------------------------------------------------------------
    # Shared validation helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _check_votes(votes: Sequence[int], qualities: np.ndarray) -> np.ndarray:
        arr = np.asarray(votes, dtype=int)
        if arr.ndim != 1 or arr.size != qualities.size:
            raise ValueError(
                f"{arr.size} votes do not match {qualities.size} jurors"
            )
        if arr.size == 0:
            raise ValueError("cannot vote with an empty jury")
        if np.any((arr != 0) & (arr != 1)):
            raise ValueError(f"votes {votes!r} must be 0/1")
        return arr

    def __repr__(self) -> str:
        kind = "deterministic" if self.is_deterministic else "randomized"
        return f"{type(self).__name__}(name={self.name!r}, {kind})"


class DeterministicStrategy(VotingStrategy):
    """Base class for Definition-1 strategies.

    Subclasses implement :meth:`decide_deterministic`; ``prob_zero`` is
    derived from it.
    """

    is_deterministic = True

    @abstractmethod
    def decide_deterministic(
        self,
        votes: np.ndarray,
        qualities: np.ndarray,
        alpha: float,
    ) -> int:
        """Return the label 0 or 1 for the observed votes."""

    def prob_zero(
        self,
        votes: Sequence[int],
        jury_or_qualities: Jury | Sequence[float],
        alpha: float = UNINFORMATIVE_PRIOR,
    ) -> float:
        qualities = _as_quality_vector(jury_or_qualities)
        arr = self._check_votes(votes, qualities)
        label = self.decide_deterministic(arr, qualities, validate_prior(alpha))
        return 1.0 if label == 0 else 0.0


class RandomizedStrategy(VotingStrategy):
    """Base class for Definition-2 strategies; subclasses implement
    :meth:`prob_zero` directly."""

    is_deterministic = False
