"""Bayesian Voting (BV) — the optimal strategy of Theorem 1.

BV computes the joint probabilities

    P0(V) = alpha     * prod_i q_i^{1-v_i} (1-q_i)^{v_i}
    P1(V) = (1-alpha) * prod_i q_i^{v_i}   (1-q_i)^{1-v_i}

and returns 0 when ``P0(V) >= P1(V)`` and 1 otherwise (ties go to 0,
matching Theorem 1's ``P0 - P1 >= 0 => S*(V) = 0`` branch).

The log-domain implementation below avoids underflow for large juries
and naturally handles workers with quality in {0, 1}:

* ``q_i = 1`` and ``v_i = 0`` contributes log(1) = 0 to u and -inf to w,
  forcing the posterior onto label 0 (the worker is infallible);
* ``q_i = 0.5`` contributes equally to both and is a no-op.

A worker with quality below 0.5 needs no special-casing here: the
likelihood expressions already encode that her vote is evidence for the
*opposite* label, which is exactly the reinterpretation discussed in
Section 3.3.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR, validate_prior
from .base import DeterministicStrategy, _as_quality_vector


def log_likelihoods(
    votes: np.ndarray, qualities: np.ndarray
) -> tuple[float, float]:
    """Return ``(ln Pr(V | t=0), ln Pr(V | t=1))``.

    Uses ``-inf`` for impossible votings (a quality-1 worker voting the
    wrong way), matching the limit of the product formula.
    """
    with np.errstate(divide="ignore"):
        log_q = np.log(qualities)
        log_not_q = np.log(1.0 - qualities)
    # Pr(V | t=0): a vote of 0 is correct (factor q), a vote of 1 wrong.
    u = float(np.sum(np.where(votes == 0, log_q, log_not_q)))
    # Pr(V | t=1): mirrored.
    w = float(np.sum(np.where(votes == 1, log_q, log_not_q)))
    return u, w


def posterior_zero(
    votes: Sequence[int],
    jury_or_qualities: Jury | Sequence[float],
    alpha: float = UNINFORMATIVE_PRIOR,
) -> float:
    """Posterior probability ``Pr(t = 0 | V)`` under the Bayes model.

    Degenerate cases: when both joint probabilities are zero (mutually
    contradicting infallible workers) the voting has probability zero of
    occurring; we return 0.5 by convention.
    """
    qualities = _as_quality_vector(jury_or_qualities)
    arr = np.asarray(votes, dtype=int)
    a = validate_prior(alpha)
    u, w = log_likelihoods(arr, qualities)
    # P0 = a * e^u, P1 = (1-a) * e^w, computed stably via the max trick.
    log_p0 = -np.inf if a == 0.0 else np.log(a) + u
    log_p1 = -np.inf if a == 1.0 else np.log(1.0 - a) + w
    if log_p0 == -np.inf and log_p1 == -np.inf:
        return 0.5
    m = max(log_p0, log_p1)
    p0 = np.exp(log_p0 - m)
    p1 = np.exp(log_p1 - m)
    return float(p0 / (p0 + p1))


class BayesianVoting(DeterministicStrategy):
    """Bayesian Voting (Definition 4): return the label with the larger
    posterior; ties resolve to 0 per Theorem 1."""

    name = "BV"

    def decide_deterministic(
        self, votes: np.ndarray, qualities: np.ndarray, alpha: float
    ) -> int:
        return 0 if posterior_zero(votes, qualities, alpha) >= 0.5 else 1

    def posterior(
        self,
        votes: Sequence[int],
        jury_or_qualities: Jury | Sequence[float],
        alpha: float = UNINFORMATIVE_PRIOR,
    ) -> tuple[float, float]:
        """Return the full posterior ``(Pr(t=0|V), Pr(t=1|V))``."""
        p0 = posterior_zero(votes, jury_or_qualities, alpha)
        return p0, 1.0 - p0
