"""Weighted majority strategies (Littlestone & Warmuth [23]).

Weighted Majority Voting (WMV) weights each vote by a function of the
voter's quality and returns the label with the larger total weight.
With *log-odds* weights ``w_i = ln(q_i / (1 - q_i))`` and a flat prior,
WMV coincides with Bayesian Voting — a useful cross-check that the
tests exploit.  The default here is the simpler *linear* weighting
``w_i = q_i`` so WMV is a genuinely distinct (and suboptimal) strategy,
as it is in the paper's Table 2.

Randomized Weighted Majority Voting (RWMV) returns 0 with probability
equal to the zero-side share of total weight.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR
from .base import (
    DeterministicStrategy,
    RandomizedStrategy,
    _as_quality_vector,
)

WeightFunction = Callable[[float], float]


def linear_weight(quality: float) -> float:
    """The default WMV weight: the quality itself."""
    return float(quality)


def log_odds_weight(quality: float) -> float:
    """Log-odds weight ``ln(q / (1 - q))``; makes WMV equal BV at a
    flat prior.  Qualities 0/1 map to -inf/+inf, dominating the vote."""
    if quality <= 0.0:
        return -math.inf
    if quality >= 1.0:
        return math.inf
    return math.log(quality / (1.0 - quality))


def _side_weights(
    votes: np.ndarray, qualities: np.ndarray, weight_fn: WeightFunction
) -> tuple[float, float]:
    """Total weight behind label 0 and label 1."""
    weights = np.array([weight_fn(q) for q in qualities], dtype=float)
    zero_weight = float(np.sum(weights[votes == 0]))
    one_weight = float(np.sum(weights[votes == 1]))
    return zero_weight, one_weight


class WeightedMajorityVoting(DeterministicStrategy):
    """WMV: the side with more total weight wins; ties resolve to 0."""

    name = "WMV"

    def __init__(self, weight_fn: WeightFunction = linear_weight) -> None:
        self._weight_fn = weight_fn

    def decide_deterministic(
        self, votes: np.ndarray, qualities: np.ndarray, alpha: float
    ) -> int:
        zero_weight, one_weight = _side_weights(votes, qualities, self._weight_fn)
        return 0 if zero_weight >= one_weight else 1


class RandomizedWeightedMajorityVoting(RandomizedStrategy):
    """RWMV: returns 0 with probability weight(0-votes) / weight(all).

    Degenerate zero-total-weight votings fall back to a fair coin.
    """

    name = "RWMV"

    def __init__(self, weight_fn: WeightFunction = linear_weight) -> None:
        self._weight_fn = weight_fn

    def prob_zero(
        self,
        votes: Sequence[int],
        jury_or_qualities: Jury | Sequence[float],
        alpha: float = UNINFORMATIVE_PRIOR,
    ) -> float:
        qualities = _as_quality_vector(jury_or_qualities)
        arr = self._check_votes(votes, qualities)
        zero_weight, one_weight = _side_weights(arr, qualities, self._weight_fn)
        total = zero_weight + one_weight
        if total <= 0.0 or not math.isfinite(total):
            return 0.5
        return max(0.0, min(1.0, zero_weight / total))
