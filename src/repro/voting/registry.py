"""Strategy registry: name -> constructor for all built-in strategies.

The registry powers CLI-ish entry points (benchmarks, examples) and the
property tests that sweep "every strategy we implement" when verifying
Theorem 1.
"""

from __future__ import annotations

from typing import Callable

from .base import VotingStrategy
from .bayesian import BayesianVoting
from .majority import HalfVoting, MajorityVoting
from .randomized import RandomBallotVoting, RandomizedMajorityVoting
from .triadic import TriadicConsensus
from .weighted import (
    RandomizedWeightedMajorityVoting,
    WeightedMajorityVoting,
    log_odds_weight,
)

_FACTORIES: dict[str, Callable[[], VotingStrategy]] = {
    "MV": MajorityVoting,
    "BV": BayesianVoting,
    "HALF": HalfVoting,
    "RMV": RandomizedMajorityVoting,
    "RBV": RandomBallotVoting,
    "WMV": WeightedMajorityVoting,
    "WMV-LOGODDS": lambda: WeightedMajorityVoting(log_odds_weight),
    "RWMV": RandomizedWeightedMajorityVoting,
    "TRIADIC": TriadicConsensus,
}


def available_strategies() -> tuple[str, ...]:
    """Names of every registered strategy."""
    return tuple(sorted(_FACTORIES))


def make_strategy(name: str) -> VotingStrategy:
    """Instantiate a strategy by registry name (case-insensitive)."""
    key = name.upper()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown strategy {name!r}; known: {', '.join(available_strategies())}"
        )
    return _FACTORIES[key]()


def all_strategies() -> list[VotingStrategy]:
    """One instance of every registered strategy."""
    return [factory() for factory in _FACTORIES.values()]


def register_strategy(name: str, factory: Callable[[], VotingStrategy]) -> None:
    """Register a custom strategy under ``name`` (upper-cased).

    Raises ``ValueError`` on duplicates to avoid silently shadowing a
    built-in.
    """
    key = name.upper()
    if key in _FACTORIES:
        raise ValueError(f"strategy {key!r} already registered")
    _FACTORIES[key] = factory
