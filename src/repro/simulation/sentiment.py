"""Synthetic tweet sentiment corpus.

Stands in for the public Sananalytics Twitter sentiment dataset the
paper crowdsources (Section 6.2.1): "5,152 tweets related to various
companies", of which 600 randomly chosen ones were published as
decision-making tasks ("is the sentiment of this tweet positive?"),
with roughly balanced true answers.

The generator builds template-based tweets with a known sentiment
label, so downstream code exercises the same path as the real corpus:
tasks with hidden binary ground truth and ~50/50 class balance.
Label convention matches the task model: 1 = positive ("yes"),
0 = not positive ("no").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.task import DecisionTask

_COMPANIES = (
    "Apple", "Google", "Microsoft", "Twitter", "Amazon",
    "Netflix", "Tesla", "IBM", "Intel", "Oracle",
)

_POSITIVE_TEMPLATES = (
    "Loving the new {company} release, works flawlessly!",
    "{company} support was fantastic today, solved my issue in minutes.",
    "Just upgraded to the latest {company} product. Totally worth it.",
    "Great quarter for {company} — impressive results again.",
    "{company} keeps getting better. Happy customer here.",
)

_NEGATIVE_TEMPLATES = (
    "The new {company} update broke everything. So frustrating.",
    "{company} customer service kept me on hold for two hours.",
    "Really disappointed with my {company} purchase, returning it.",
    "Another outage at {company}? This is getting ridiculous.",
    "{company} prices went up again and the quality went down.",
)


@dataclass(frozen=True)
class Tweet:
    """A synthetic tweet with its latent sentiment."""

    tweet_id: str
    text: str
    company: str
    is_positive: bool

    def to_task(self) -> DecisionTask:
        """The decision-making task the paper publishes per tweet."""
        return DecisionTask(
            task_id=self.tweet_id,
            question=f"Is the sentiment of this tweet positive? {self.text!r}",
            prior=0.5,
            ground_truth=1 if self.is_positive else 0,
        )


def generate_corpus(
    num_tweets: int = 600,
    positive_fraction: float = 0.5,
    rng: np.random.Generator | None = None,
) -> list[Tweet]:
    """Generate a corpus with the paper's size and class balance.

    The paper notes "the true answers for yes and no is approximately
    equal", motivating the flat prior it uses; ``positive_fraction``
    lets tests explore imbalance.
    """
    if num_tweets < 1:
        raise ValueError("num_tweets must be >= 1")
    if not 0.0 <= positive_fraction <= 1.0:
        raise ValueError("positive_fraction must lie in [0, 1]")
    if rng is None:
        rng = np.random.default_rng()
    tweets = []
    for i in range(num_tweets):
        positive = bool(rng.random() < positive_fraction)
        company = _COMPANIES[int(rng.integers(len(_COMPANIES)))]
        templates = _POSITIVE_TEMPLATES if positive else _NEGATIVE_TEMPLATES
        text = templates[int(rng.integers(len(templates)))].format(company=company)
        tweets.append(
            Tweet(
                tweet_id=f"tweet-{i:04d}",
                text=text,
                company=company,
                is_positive=positive,
            )
        )
    return tweets
