"""Workload simulation: synthetic pools and the simulated AMT platform.

* :func:`generate_pool` — Gaussian quality/cost pools (Section 6.1.1).
* :class:`AMTSimulator` — the Section-6.2.1 campaign, calibrated to
  the paper's published statistics (see DESIGN.md, substitutions).
* :func:`generate_corpus` — the synthetic tweet-sentiment corpus.
"""

from .amt import AMTConfig, AMTSimulator, Campaign, HIT
from .sentiment import Tweet, generate_corpus
from .synthetic import (
    SyntheticPoolConfig,
    generate_costs,
    generate_jury_qualities,
    generate_pool,
    generate_qualities,
)

__all__ = [
    "AMTConfig",
    "AMTSimulator",
    "Campaign",
    "HIT",
    "SyntheticPoolConfig",
    "Tweet",
    "generate_corpus",
    "generate_costs",
    "generate_jury_qualities",
    "generate_pool",
    "generate_qualities",
]
