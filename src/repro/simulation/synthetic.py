"""Synthetic worker pools (Section 6.1.1).

The paper draws each worker's quality and cost from Gaussians,

    q_i ~ N(mu, sigma^2)        with mu = 0.7, sigma^2 = 0.05,
    c_i ~ N(cost_mu, cost_sd^2) with cost_mu = 0.05, cost_sd = 0.2,

then (implicitly) truncates to the valid domains: qualities to [0, 1]
and costs to [0, inf).  Qualities *below* 0.5 are kept — Bayesian
Voting extracts information from them via the Section-3.3 flip, which
is exactly why OPTJS stays robust at mu = 0.5 (Figure 8(a)) while MV
degrades.

Defaults follow the paper: B = 0.5, alpha = 0.5, N = 50 candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.worker import Worker, WorkerPool


@dataclass(frozen=True)
class SyntheticPoolConfig:
    """Parameters of the Section-6.1.1 generator.

    ``quality_var`` is a *variance* (the paper's sigma^2 = 0.05);
    ``cost_sd`` is a *standard deviation* (the quantity Figure 6(d)
    sweeps over [0.1, 1]).
    """

    num_workers: int = 50
    quality_mean: float = 0.7
    quality_var: float = 0.05
    cost_mean: float = 0.05
    cost_sd: float = 0.2
    quality_floor: float = 0.0
    quality_ceiling: float = 1.0
    id_prefix: str = "w"

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.quality_var < 0 or self.cost_sd < 0:
            raise ValueError("variances must be non-negative")
        if not 0.0 <= self.quality_floor <= self.quality_ceiling <= 1.0:
            raise ValueError("quality clip bounds must satisfy 0 <= lo <= hi <= 1")


def generate_qualities(
    n: int,
    mean: float,
    variance: float,
    rng: np.random.Generator,
    floor: float = 0.0,
    ceiling: float = 1.0,
) -> np.ndarray:
    """Draw ``n`` qualities from N(mean, variance) clipped to
    [floor, ceiling]."""
    draws = rng.normal(mean, np.sqrt(variance), size=n)
    return np.clip(draws, floor, ceiling)


def generate_costs(
    n: int, mean: float, sd: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` costs from a folded Gaussian ``|N(mean, sd^2)|``.

    The paper does not say how it maps negative Gaussian draws into
    valid costs.  Folding (absolute value) rather than clipping-to-zero
    is used here because clipping would make ~40% of the default pool
    free — Lemma 1 then admits them all and every selector saturates at
    JQ ~ 1, which contradicts the 85-97% curves of Figures 6(b) and
    7(a).  Folded costs keep every worker paid and reproduce those
    shapes (see EXPERIMENTS.md).
    """
    draws = rng.normal(mean, sd, size=n)
    return np.abs(draws)


def generate_pool(
    config: SyntheticPoolConfig | None = None,
    rng: np.random.Generator | None = None,
) -> WorkerPool:
    """Generate one candidate pool per the paper's default recipe."""
    if config is None:
        config = SyntheticPoolConfig()
    if rng is None:
        rng = np.random.default_rng()
    qualities = generate_qualities(
        config.num_workers,
        config.quality_mean,
        config.quality_var,
        rng,
        config.quality_floor,
        config.quality_ceiling,
    )
    costs = generate_costs(config.num_workers, config.cost_mean, config.cost_sd, rng)
    return WorkerPool(
        Worker(f"{config.id_prefix}{i}", float(q), float(c))
        for i, (q, c) in enumerate(zip(qualities, costs))
    )


def generate_jury_qualities(
    size: int,
    mean: float = 0.7,
    variance: float = 0.05,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Qualities of a fixed-size jury, for the Figure 8/9 experiments
    that study JQ without a selection step."""
    if rng is None:
        rng = np.random.default_rng()
    return generate_qualities(size, mean, variance, rng)
