"""Simulated Amazon Mechanical Turk platform (Section 6.2.1 substitute).

The paper's real-data experiment ran on AMT: 600 sentiment tasks
batched into 30 HITs of 20 questions, each HIT assigned to m = 20
distinct workers at $0.02 per HIT.  The resulting campaign statistics:

* 128 workers in total, averaging 93.75 answered questions;
* 2 workers answered everything, 67 answered a single HIT
  (a heavy-tailed participation profile);
* mean empirical quality 0.71, 40 workers above 0.8, ~10% below 0.6.

The real answer logs are not redistributable (and unavailable offline),
so this module simulates the platform end to end and *calibrates the
latent populations to those published statistics*:

* latent qualities ~ Beta(10.5, 3.9) (mean ~0.73, ~29% mass above 0.8,
  ~13% below 0.6 — the closest two-parameter fit to the published
  moments), with the two "power workers" drawn from the upper half —
  heavy participants on AMT are reliably experienced;
* participation demands realize the published profile exactly: the
  power workers take every HIT, 67/128 of the crowd takes a single
  HIT, and a geometric middle absorbs the remaining worker-HIT slots.

Every downstream code path the real data exercises — per-question
candidate sets of 20 workers, empirical quality estimation, JSP per
question, JQ-versus-accuracy validation over answer arrival order —
is exercised identically by the simulated campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.task import DecisionTask
from ..core.worker import Worker, WorkerPool
from ..estimation.answers import AnswerMatrix
from ..estimation.empirical import empirical_qualities
from .sentiment import Tweet, generate_corpus


@dataclass(frozen=True)
class AMTConfig:
    """Knobs of the simulated campaign; defaults match the paper."""

    num_workers: int = 128
    num_tasks: int = 600
    questions_per_hit: int = 20
    assignments_per_hit: int = 20  # the paper's m
    reward_per_hit: float = 0.02
    num_power_workers: int = 2
    quality_beta_a: float = 10.5
    quality_beta_b: float = 3.9

    def __post_init__(self) -> None:
        if self.num_tasks % self.questions_per_hit != 0:
            raise ValueError(
                "num_tasks must be a multiple of questions_per_hit"
            )
        if self.assignments_per_hit > self.num_workers:
            raise ValueError(
                "cannot assign a HIT to more distinct workers than exist"
            )

    @property
    def num_hits(self) -> int:
        return self.num_tasks // self.questions_per_hit


@dataclass(frozen=True)
class HIT:
    """A batch of questions assigned to a set of workers."""

    hit_id: str
    task_ids: tuple[str, ...]
    worker_ids: tuple[str, ...]
    reward: float


@dataclass
class Campaign:
    """A finished simulated campaign: everything the paper's real-data
    experiments consume.

    Attributes
    ----------
    tasks:
        The 600 decision tasks (with hidden ground truth for scoring).
    hits:
        The HIT batches, with their assigned workers.
    answers:
        The full sparse answer matrix.
    vote_order:
        Per task, the (worker_id, label) pairs in arrival order — the
        "answering sequence" Figure 10(d) cuts at z votes.
    latent_qualities:
        The simulator's hidden per-worker accuracy.
    """

    config: AMTConfig
    tweets: list[Tweet]
    tasks: dict[str, DecisionTask]
    hits: list[HIT]
    answers: AnswerMatrix
    vote_order: dict[str, list[tuple[str, int]]]
    latent_qualities: dict[str, float]

    # ------------------------------------------------------------------
    # Derived quantities used by the experiments
    # ------------------------------------------------------------------
    def ground_truth(self) -> dict[str, int]:
        return {
            task_id: task.ground_truth
            for task_id, task in self.tasks.items()
            if task.ground_truth is not None
        }

    def estimated_qualities(self) -> dict[str, float]:
        """Empirical qualities exactly as the paper computes them: the
        fraction of correctly answered questions per worker."""
        return empirical_qualities(self.answers, self.ground_truth())

    def candidate_pool(
        self,
        task_id: str,
        qualities: dict[str, float] | None = None,
        cost_sd: float = 0.2,
        cost_mean: float = 0.05,
        rng: np.random.Generator | None = None,
        limit: int | None = None,
    ) -> WorkerPool:
        """The per-question candidate set W: the workers who answered
        the question (Section 6.2.2), with synthetic costs.

        The paper keeps the synthetic-cost settings for the real data
        ("we follow the settings in experiments on synthetic data
        except that worker qualities are computed using the real-world
        data"), hence the Gaussian costs here.
        """
        if qualities is None:
            qualities = self.estimated_qualities()
        if rng is None:
            rng = np.random.default_rng()
        worker_ids = [w for w, _ in self.vote_order[task_id]]
        if limit is not None:
            worker_ids = worker_ids[:limit]
        workers = []
        for worker_id in worker_ids:
            quality = qualities.get(worker_id)
            if quality is None:
                continue
            cost = float(max(rng.normal(cost_mean, cost_sd), 0.0))
            workers.append(Worker(worker_id, quality, cost))
        return WorkerPool(workers)

    def participation_summary(self) -> dict[str, float]:
        """Campaign statistics comparable to the paper's published ones."""
        counts = self.answers.participation_counts()
        per_worker = np.array(sorted(counts.values()))
        qualities = np.array(list(self.estimated_qualities().values()))
        return {
            "num_workers": float(len(counts)),
            "mean_answers_per_worker": float(per_worker.mean()),
            "workers_with_single_hit": float(
                np.sum(per_worker == self.config.questions_per_hit)
            ),
            "workers_answering_everything": float(
                np.sum(per_worker == self.config.num_tasks)
            ),
            "mean_quality": float(qualities.mean()),
            "workers_above_080": float(np.sum(qualities > 0.8)),
            "fraction_below_060": float(np.mean(qualities < 0.6)),
        }


class AMTSimulator:
    """End-to-end simulator of the paper's AMT campaign."""

    def __init__(
        self,
        config: AMTConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config if config is not None else AMTConfig()
        self._rng = rng if rng is not None else np.random.default_rng()

    def run(self) -> Campaign:
        """Simulate the whole campaign and return its artifacts."""
        config = self.config
        rng = self._rng

        tweets = generate_corpus(config.num_tasks, rng=rng)
        tasks = {t.tweet_id: t.to_task() for t in tweets}

        worker_ids = [f"turker-{i:03d}" for i in range(config.num_workers)]
        qualities = self._draw_qualities(rng)
        latent = dict(zip(worker_ids, qualities))

        demands = self._draw_hit_demands(rng)
        hits = self._assign_hits(tweets, worker_ids, demands, rng)

        answers = AnswerMatrix(num_labels=2)
        vote_order: dict[str, list[tuple[str, int]]] = {
            t.tweet_id: [] for t in tweets
        }
        for hit in hits:
            # Workers complete the HIT in a random interleaving, giving
            # each task a realistic arrival order of votes.
            order = list(hit.worker_ids)
            rng.shuffle(order)
            for worker_id in order:
                for task_id in hit.task_ids:
                    truth = tasks[task_id].ground_truth
                    correct = rng.random() < latent[worker_id]
                    label = truth if correct else 1 - truth
                    answers.record(worker_id, task_id, label)
                    vote_order[task_id].append((worker_id, label))

        return Campaign(
            config=config,
            tweets=tweets,
            tasks=tasks,
            hits=hits,
            answers=answers,
            vote_order=vote_order,
            latent_qualities=latent,
        )

    # ------------------------------------------------------------------
    # Internal generators
    # ------------------------------------------------------------------
    def _draw_qualities(self, rng: np.random.Generator) -> np.ndarray:
        config = self.config
        draws = rng.beta(
            config.quality_beta_a, config.quality_beta_b, size=config.num_workers
        )
        # Power workers come from the population's upper half: heavy AMT
        # participants are experienced (and the paper's two full-
        # coverage workers must survive quality estimation credibly).
        for i in range(config.num_power_workers):
            draws[i] = max(draws[i], float(np.median(draws)))
        return np.clip(draws, 0.05, 0.98)

    def _draw_hit_demands(self, rng: np.random.Generator) -> np.ndarray:
        """How many HITs each worker completes.

        Realizes the paper's participation profile exactly at the
        default configuration: the power workers take every HIT, a
        little over half the crowd takes a single HIT (67 of 128), and
        the rest follow a heavy-tailed (geometric) middle, rescaled so
        total demand matches the campaign's worker-HIT slots.
        """
        config = self.config
        total_slots = config.num_hits * config.assignments_per_hit
        demands = np.ones(config.num_workers, dtype=np.int64)
        power = range(config.num_power_workers)
        for i in power:
            demands[i] = config.num_hits

        num_single = round(config.num_workers * 67 / 128)
        middle = np.arange(
            config.num_power_workers, config.num_workers - num_single
        )
        remaining_slots = (
            total_slots - config.num_power_workers * config.num_hits - num_single
        )
        if middle.size > 0 and remaining_slots > middle.size:
            # Heavy-tailed raw draws, capped below the power workers,
            # then rescaled by largest remainders to hit the total.
            raw = 1 + rng.geometric(p=0.15, size=middle.size)
            raw = np.minimum(raw, config.num_hits - 1)
            scaled = raw * (remaining_slots / raw.sum())
            floors = np.maximum(np.floor(scaled).astype(np.int64), 1)
            floors = np.minimum(floors, config.num_hits - 1)
            shortfall = remaining_slots - int(floors.sum())
            order = np.argsort(-(scaled - floors))
            idx = 0
            while shortfall != 0 and idx < 10 * middle.size:
                j = int(order[idx % middle.size])
                if shortfall > 0 and floors[j] < config.num_hits - 1:
                    floors[j] += 1
                    shortfall -= 1
                elif shortfall < 0 and floors[j] > 1:
                    floors[j] -= 1
                    shortfall += 1
                idx += 1
            demands[middle] = floors
        return demands

    def _assign_hits(
        self,
        tweets: list[Tweet],
        worker_ids: list[str],
        demands: np.ndarray,
        rng: np.random.Generator,
    ) -> list[HIT]:
        """Schedule workers onto HITs respecting per-worker demand.

        Largest-remaining-demand-first (with random tie-breaking) is
        the Gale–Ryser-style greedy that realizes any feasible degree
        sequence: a worker demanding ``d`` HITs is always among the
        top choices until served, and no HIT double-books a worker.
        """
        config = self.config
        remaining = demands.astype(np.int64).copy()
        hits = []
        for h in range(config.num_hits):
            start = h * config.questions_per_hit
            task_ids = tuple(
                t.tweet_id for t in tweets[start : start + config.questions_per_hit]
            )
            hits_left = config.num_hits - h
            # Anyone whose demand equals the HITs left must be in all of
            # them; fill the rest by largest demand, randomized ties.
            tie_break = rng.random(config.num_workers)
            order = np.lexsort((tie_break, -remaining))
            chosen = [
                int(i) for i in order[: config.assignments_per_hit]
                if remaining[int(i)] > 0
            ]
            must = [int(i) for i in np.flatnonzero(remaining >= hits_left)]
            chosen = list(dict.fromkeys(must + chosen))[: config.assignments_per_hit]
            for i in chosen:
                remaining[i] -= 1
            hits.append(
                HIT(
                    hit_id=f"hit-{h:02d}",
                    task_ids=task_ids,
                    worker_ids=tuple(worker_ids[i] for i in sorted(chosen)),
                    reward=config.reward_per_hit,
                )
            )
        return hits
