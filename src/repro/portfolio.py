"""Budget allocation across a *set* of decision tasks.

The paper's introduction poses JSP for "a set of decision-making
tasks", then solves the single-task problem; production campaigns must
also decide *how to split one budget across many questions*.  This
module closes that gap on top of the frontier machinery:

1. each task gets a cost-JQ frontier over its own candidate pool
   (exact for small pools, annealed otherwise);
2. each frontier is reduced to its *upper concave envelope* — the
   points reachable by any rational spender;
3. a global greedy walk repeatedly buys the envelope step with the
   best marginal JQ-per-unit-cost anywhere in the campaign, until the
   budget is exhausted.

Greedy-by-slope on concave envelopes is the classic multiple-choice
knapsack relaxation: it is optimal whenever the budget lands exactly
on a chosen step boundary, and within one step's JQ gain of optimal in
general.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .core.worker import WorkerPool
from .frontier import Frontier, FrontierPoint, exact_frontier, sampled_frontier
from .selection.base import JQObjective


@dataclass(frozen=True)
class TaskAllocation:
    """The plan for one task: which frontier point to buy."""

    task_id: str
    point: FrontierPoint | None  # None = ask nobody, answer the prior

    @property
    def cost(self) -> float:
        return 0.0 if self.point is None else self.point.cost

    def jq(self, baseline: float) -> float:
        return baseline if self.point is None else self.point.jq


@dataclass(frozen=True)
class CampaignPlan:
    """A full allocation across tasks."""

    allocations: tuple[TaskAllocation, ...]
    budget: float
    baseline_jq: float  # JQ of an unfunded task (the prior's mode)

    @property
    def total_cost(self) -> float:
        return float(sum(a.cost for a in self.allocations))

    @property
    def total_jq(self) -> float:
        """Sum of per-task JQs (expected number of correct answers)."""
        return float(sum(a.jq(self.baseline_jq) for a in self.allocations))

    @property
    def mean_jq(self) -> float:
        return self.total_jq / len(self.allocations)

    def allocation_for(self, task_id: str) -> TaskAllocation:
        for allocation in self.allocations:
            if allocation.task_id == task_id:
                return allocation
        raise KeyError(task_id)

    def render(self) -> str:
        header = f"{'Task':<14} | {'Spend':>8} | {'JQ':>8} | Jury"
        lines = [header, "-" * len(header)]
        for a in sorted(self.allocations, key=lambda x: x.task_id):
            jury = "-" if a.point is None else "{" + ", ".join(a.point.worker_ids) + "}"
            lines.append(
                f"{a.task_id:<14} | {a.cost:>8.4g} | "
                f"{a.jq(self.baseline_jq):>7.2%} | {jury}"
            )
        lines.append(
            f"total spend {self.total_cost:.4g} / {self.budget:g}, "
            f"mean JQ {self.mean_jq:.2%}"
        )
        return "\n".join(lines)


def concave_envelope(
    points: Sequence[FrontierPoint], baseline: float
) -> list[FrontierPoint]:
    """Upper concave envelope of a frontier, anchored at (0, baseline).

    Points below the running hull (diminishing-then-increasing
    returns) are removed so successive slopes strictly decrease —
    the precondition for the greedy walk's near-optimality.
    """
    anchored = [FrontierPoint(0.0, baseline, ())] + [
        p for p in sorted(points, key=lambda p: p.cost) if p.jq > baseline
    ]
    hull: list[FrontierPoint] = []
    for point in anchored:
        while len(hull) >= 2:
            a, b = hull[-2], hull[-1]
            slope_ab = (b.jq - a.jq) / max(b.cost - a.cost, 1e-15)
            slope_ap = (point.jq - a.jq) / max(point.cost - a.cost, 1e-15)
            if slope_ap >= slope_ab:
                hull.pop()  # b lies under the chord a->point
            else:
                break
        if hull and point.cost <= hull[-1].cost + 1e-15:
            if point.jq > hull[-1].jq:
                hull[-1] = point
            continue
        hull.append(point)
    return hull


def allocate_budget(
    frontiers: Mapping[str, Frontier],
    budget: float,
    baseline_jq: float = 0.5,
) -> CampaignPlan:
    """Greedy-by-slope allocation of one budget across task frontiers.

    Parameters
    ----------
    frontiers:
        task_id -> that task's cost-JQ frontier.
    budget:
        Total campaign budget.
    baseline_jq:
        JQ of an unfunded task (``max(alpha, 1-alpha)``; 0.5 for flat
        priors).
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    envelopes = {
        task: concave_envelope(frontier.points, baseline_jq)
        for task, frontier in frontiers.items()
    }
    # Current envelope index per task; index 0 is the (0, baseline) anchor.
    level = {task: 0 for task in frontiers}
    remaining = float(budget)

    while True:
        best_task = None
        best_slope = 0.0
        for task, envelope in envelopes.items():
            i = level[task]
            if i + 1 >= len(envelope):
                continue
            step_cost = envelope[i + 1].cost - envelope[i].cost
            if step_cost > remaining + 1e-12:
                continue
            step_gain = envelope[i + 1].jq - envelope[i].jq
            slope = step_gain / max(step_cost, 1e-15)
            if slope > best_slope + 1e-15:
                best_slope = slope
                best_task = task
        if best_task is None:
            break
        step = (
            envelopes[best_task][level[best_task] + 1].cost
            - envelopes[best_task][level[best_task]].cost
        )
        remaining -= step
        level[best_task] += 1

    allocations = []
    for task in frontiers:
        i = level[task]
        chosen = envelopes[task][i] if i > 0 else None
        allocations.append(TaskAllocation(task, chosen))
    return CampaignPlan(tuple(allocations), float(budget), baseline_jq)


def plan_campaign(
    pools: Mapping[str, WorkerPool],
    budget: float,
    alpha: float = 0.5,
    exact_pool_cutoff: int = 12,
    sample_budgets: Sequence[float] | None = None,
    rng: np.random.Generator | None = None,
) -> CampaignPlan:
    """Build frontiers for every task's pool, then allocate the budget.

    Pools at or below ``exact_pool_cutoff`` workers get exact
    frontiers; larger ones get annealed frontiers sampled at
    ``sample_budgets`` (default: eight log-spaced budgets up to the
    pool's total cost).
    """
    if rng is None:
        rng = np.random.default_rng()
    objective = JQObjective(alpha=alpha)
    frontiers: dict[str, Frontier] = {}
    for task, pool in pools.items():
        if len(pool) <= exact_pool_cutoff:
            frontiers[task] = exact_frontier(pool, objective)
        else:
            budgets = sample_budgets
            if budgets is None:
                top = max(pool.total_cost, 1e-9)
                budgets = list(np.geomspace(top / 50, top, 8))
            frontiers[task] = sampled_frontier(
                pool, budgets, objective, rng=rng
            )
    baseline = max(alpha, 1.0 - alpha)
    return allocate_budget(frontiers, budget, baseline)
