"""Multiclass Jury Quality (Section 7): exact and bucketed.

The JQ definition generalizes directly (Equation 9):

    JQ = sum_{t'} alpha_{t'} * H(t'),
    H(t') = sum_{V in {0..l-1}^n} Pr(V | t = t') * 1{BV(V) = t'}.

Exact computation enumerates ``l^n`` votings.  The scalable estimator
follows the paper's sketch: for each candidate truth ``t'`` run a
dynamic program whose keys are ``(l-1)``-tuples of *bucketed* log-ratios

    ln( alpha_{t'} Pr(V | t') / (alpha_j Pr(V | j)) ),   j != t',

each of which decomposes into per-worker increments
``ln C_i[t', v] - ln C_i[j, v]`` plus the prior offset.  ``BV(V) = t'``
exactly when all components are >= 0 (with equality allowed only
against labels ``j > t'``, matching the deterministic smallest-label
tie-break), so ``H(t')`` is the probability mass of keys in that
orthant.

Zero confusion entries produce infinite log-ratios; those are clamped
to a saturation value no finite sequence of increments can undo, which
preserves the decision.  Zero-probability branches are skipped.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

import numpy as np

from ..core.exceptions import EnumerationLimitError
from ..core.task import validate_prior_vector
from .confusion import MultiClassWorker
from .voting import MultiClassBayesianVoting

#: Default bucket resolution, matching the binary estimator.
DEFAULT_NUM_BUCKETS = 50

#: Largest ``l^n`` enumeration the exact routine performs by default.
DEFAULT_MAX_ENUMERATION = 2_000_000


def _resolve_prior(
    workers: Sequence[MultiClassWorker], prior: Sequence[float] | None
) -> np.ndarray:
    if not workers:
        raise ValueError("cannot compute JQ for an empty jury")
    num_labels = workers[0].num_labels
    for worker in workers:
        if worker.num_labels != num_labels:
            raise ValueError("workers disagree on the number of labels")
    if prior is None:
        return np.full(num_labels, 1.0 / num_labels)
    vec = validate_prior_vector(prior)
    if vec.size != num_labels:
        raise ValueError(
            f"prior has {vec.size} entries, workers have {num_labels} labels"
        )
    return vec


def exact_jq_multiclass(
    workers: Sequence[MultiClassWorker],
    prior: Sequence[float] | None = None,
    strategy=None,
    max_enumeration: int = DEFAULT_MAX_ENUMERATION,
) -> float:
    """Exact multiclass JQ by enumerating all ``l^n`` votings.

    ``strategy`` defaults to multiclass Bayesian Voting, for which the
    closed form ``sum_V max_t alpha_t Pr(V|t)`` applies.  Any object
    with a ``decide(votes, workers, prior)`` method (and optionally a
    ``label_distribution`` method for randomized strategies) works.
    """
    prior_vec = _resolve_prior(workers, prior)
    num_labels = workers[0].num_labels
    n = len(workers)
    total = num_labels**n
    if total > max_enumeration:
        raise EnumerationLimitError(
            f"exact multiclass JQ enumerates {num_labels}^{n} = {total} "
            f"votings, above the limit {max_enumeration}"
        )

    matrices = [w.confusion.matrix for w in workers]
    use_bv_closed_form = strategy is None or isinstance(
        strategy, MultiClassBayesianVoting
    )
    randomized = hasattr(strategy, "label_distribution")

    jq = 0.0
    for votes in product(range(num_labels), repeat=n):
        # joint[t] = alpha_t * Pr(V | t)
        joint = prior_vec.copy()
        for matrix, vote in zip(matrices, votes):
            joint = joint * matrix[:, vote]
        if use_bv_closed_form:
            # BV picks argmax (first index on ties), so the correct-mass
            # contribution of this voting is exactly max(joint).
            jq += float(joint.max())
        elif randomized:
            dist = strategy.label_distribution(votes, workers, tuple(prior_vec))
            jq += float(np.dot(joint, dist))
        else:
            decided = strategy.decide(votes, workers, tuple(prior_vec))
            jq += float(joint[decided])
    return jq


def estimate_jq_multiclass(
    workers: Sequence[MultiClassWorker],
    prior: Sequence[float] | None = None,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
) -> float:
    """Bucketed multiclass JQ for Bayesian Voting (Section 7 sketch)."""
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    prior_vec = _resolve_prior(workers, prior)
    num_labels = workers[0].num_labels
    jq = 0.0
    for t_prime in range(num_labels):
        if prior_vec[t_prime] <= 0.0:
            continue
        jq += prior_vec[t_prime] * _h_value(
            t_prime, workers, prior_vec, num_buckets
        )
    return min(max(jq, 0.0), 1.0)


def _h_value(
    t_prime: int,
    workers: Sequence[MultiClassWorker],
    prior: np.ndarray,
    num_buckets: int,
) -> float:
    """``H(t')``: mass of votings BV maps to ``t'``, bucketed DP."""
    num_labels = workers[0].num_labels
    others = [j for j in range(num_labels) if j != t_prime]
    n = len(workers)

    with np.errstate(divide="ignore"):
        log_prior = np.log(prior)
        log_matrices = [np.log(w.confusion.matrix) for w in workers]

    # Raw (float, possibly infinite) increments: for worker i voting v,
    # component j moves by  ln C_i[t', v] - ln C_i[j, v].
    raw_offsets = [log_prior[t_prime] - log_prior[j] for j in others]
    raw_increments: list[np.ndarray] = []  # one (l, l-1) array per worker
    for lm in log_matrices:
        inc = np.empty((num_labels, len(others)))
        for col, j in enumerate(others):
            inc[:, col] = lm[t_prime, :] - lm[j, :]
        raw_increments.append(inc)

    finite_values = [abs(x) for x in raw_offsets if np.isfinite(x)]
    for inc in raw_increments:
        finite = inc[np.isfinite(inc)]
        finite_values.extend(abs(float(x)) for x in finite.ravel())
    upper = max(finite_values, default=0.0)

    # When every finite log-ratio is zero the bucket width is
    # irrelevant (all finite increments bucket to 0); the dynamic
    # program still matters because infinite ratios — deterministic
    # confusion entries — decide votings through saturation.
    delta = upper / num_buckets if upper > 0.0 else 1.0
    # Saturation beyond any reachable finite drift: each of the n
    # increments and the offset is at most num_buckets in magnitude.
    big = (n + 2) * num_buckets + 1

    def bucket(x: float) -> int:
        if x == np.inf:
            return big
        if x == -np.inf:
            return -big
        return int(np.ceil(x / delta - 0.5))

    def saturating_add(a: int, b: int) -> int:
        # Once saturated, a component's sign is locked (an infinite
        # log-ratio cannot be cancelled by finite evidence).
        if a >= big or b >= big:
            return big
        if a <= -big or b <= -big:
            return -big
        return max(-big, min(big, a + b))

    initial_key = tuple(bucket(x) for x in raw_offsets)
    bucketed_increments = [
        np.vectorize(bucket)(inc).astype(np.int64) for inc in raw_increments
    ]

    current: dict[tuple[int, ...], float] = {initial_key: 1.0}
    for worker, inc in zip(workers, bucketed_increments):
        probs = worker.confusion.matrix[t_prime]
        nxt: dict[tuple[int, ...], float] = {}
        for key, prob in current.items():
            for vote in range(num_labels):
                p = float(probs[vote])
                if p <= 0.0:
                    continue
                new_key = tuple(
                    saturating_add(k, int(b)) for k, b in zip(key, inc[vote])
                )
                nxt[new_key] = nxt.get(new_key, 0.0) + prob * p
        current = nxt

    mass = 0.0
    for key, prob in current.items():
        if _wins(key, t_prime, others):
            mass += prob
    return mass


def _wins(key: tuple[int, ...], t_prime: int, others: list[int]) -> bool:
    """BV returns ``t'`` iff every component is positive, or zero
    against a *larger* label (smallest-label tie-break)."""
    for component, j in zip(key, others):
        if component < 0:
            return False
        if component == 0 and j < t_prime:
            return False
    return True
