"""Confusion-matrix worker model (Section 7, refs [18, 34]).

A worker answering an ``l``-choice task is described by an ``l x l``
row-stochastic matrix ``C`` where ``C[j, k] = Pr(vote = k | truth = j)``.
The single-quality model of the main paper is the special case with
``q`` on the diagonal and ``(1 - q) / (l - 1)`` spread off-diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.exceptions import ConfusionMatrixError, InvalidCostError


class ConfusionMatrix:
    """An immutable row-stochastic confusion matrix."""

    __slots__ = ("_matrix",)

    def __init__(self, matrix: Sequence[Sequence[float]] | np.ndarray) -> None:
        arr = np.asarray(matrix, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ConfusionMatrixError(
                f"confusion matrix must be square, got shape {arr.shape}"
            )
        if arr.shape[0] < 2:
            raise ConfusionMatrixError("confusion matrix needs >= 2 labels")
        if np.any(np.isnan(arr)) or np.any(arr < 0.0) or np.any(arr > 1.0):
            raise ConfusionMatrixError("entries must lie in [0, 1]")
        row_sums = arr.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-8):
            raise ConfusionMatrixError(
                f"rows must sum to 1, got {row_sums.tolist()}"
            )
        arr = arr / row_sums[:, None]  # exact renormalization
        arr.setflags(write=False)
        self._matrix = arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_quality(cls, quality: float, num_labels: int) -> "ConfusionMatrix":
        """The single-quality special case: ``q`` on the diagonal,
        uniform error mass off it."""
        if not 0.0 <= quality <= 1.0:
            raise ConfusionMatrixError(f"quality {quality!r} outside [0, 1]")
        if num_labels < 2:
            raise ConfusionMatrixError("num_labels must be >= 2")
        off = (1.0 - quality) / (num_labels - 1)
        matrix = np.full((num_labels, num_labels), off)
        np.fill_diagonal(matrix, quality)
        return cls(matrix)

    @classmethod
    def identity(cls, num_labels: int) -> "ConfusionMatrix":
        """A perfect worker."""
        return cls(np.eye(num_labels))

    @classmethod
    def uniform(cls, num_labels: int) -> "ConfusionMatrix":
        """A completely uninformative worker (every row uniform)."""
        return cls(np.full((num_labels, num_labels), 1.0 / num_labels))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_labels(self) -> int:
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """Read-only view of the underlying array."""
        return self._matrix

    def prob(self, truth: int, vote: int) -> float:
        """``Pr(vote | truth)``."""
        return float(self._matrix[truth, vote])

    def row(self, truth: int) -> np.ndarray:
        return self._matrix[truth]

    @property
    def diagonal_quality(self) -> float:
        """Mean diagonal — a scalar summary comparable to ``q``."""
        return float(np.mean(np.diag(self._matrix)))

    @property
    def min_entry(self) -> float:
        return float(self._matrix.min())

    def smoothed(self, epsilon: float = 1e-6) -> "ConfusionMatrix":
        """Additive smoothing so every entry is strictly positive.

        The bucketed multiclass JQ estimator needs finite log-ratios,
        hence strictly positive entries; smoothing trades an ``O(eps)``
        model perturbation for that.
        """
        if epsilon <= 0.0:
            raise ValueError("epsilon must be positive")
        arr = self._matrix + epsilon
        return ConfusionMatrix(arr / arr.sum(axis=1, keepdims=True))

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfusionMatrix):
            return NotImplemented
        return np.array_equal(self._matrix, other._matrix)

    def __hash__(self) -> int:
        return hash(self._matrix.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConfusionMatrix(l={self.num_labels}, "
            f"diag={self.diagonal_quality:.3f})"
        )


@dataclass(frozen=True)
class MultiClassWorker:
    """A worker answering multi-choice tasks.

    Mirrors :class:`repro.core.Worker` with the scalar quality replaced
    by a confusion matrix.
    """

    worker_id: str
    confusion: ConfusionMatrix
    cost: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not isinstance(self.worker_id, str) or not self.worker_id:
            raise ValueError("worker_id must be a non-empty string")
        if not isinstance(self.confusion, ConfusionMatrix):
            raise TypeError("confusion must be a ConfusionMatrix")
        c = float(self.cost)
        if not np.isfinite(c) or c < 0.0:
            raise InvalidCostError(
                f"worker {self.worker_id!r}: cost {self.cost!r} must be "
                "finite and non-negative"
            )
        object.__setattr__(self, "cost", c)

    @property
    def num_labels(self) -> int:
        return self.confusion.num_labels

    @classmethod
    def from_quality(
        cls, worker_id: str, quality: float, num_labels: int, cost: float = 0.0
    ) -> "MultiClassWorker":
        """Lift a single-quality worker into the confusion model."""
        return cls(worker_id, ConfusionMatrix.from_quality(quality, num_labels), cost)
