"""Section-7 extension: multi-choice tasks and confusion-matrix workers.

* :class:`ConfusionMatrix` / :class:`MultiClassWorker` — the richer
  worker model of refs [18, 34].
* :class:`MultiClassBayesianVoting` — the optimal strategy (MAP).
* :func:`exact_jq_multiclass` / :func:`estimate_jq_multiclass` — JQ
  computation, exact and bucketed-tuple-key approximate.
* :func:`select_multiclass_jury` — JSP via the shared annealer.
"""

from .confusion import ConfusionMatrix, MultiClassWorker
from .quality import (
    DEFAULT_MAX_ENUMERATION,
    estimate_jq_multiclass,
    exact_jq_multiclass,
)
from .selection import (
    MultiClassJQObjective,
    MultiClassSelection,
    select_multiclass_jury,
)
from .voting import (
    MultiClassBayesianVoting,
    PluralityVoting,
    RandomizedPluralityVoting,
)

__all__ = [
    "ConfusionMatrix",
    "DEFAULT_MAX_ENUMERATION",
    "MultiClassBayesianVoting",
    "MultiClassJQObjective",
    "MultiClassSelection",
    "MultiClassWorker",
    "PluralityVoting",
    "RandomizedPluralityVoting",
    "estimate_jq_multiclass",
    "exact_jq_multiclass",
    "select_multiclass_jury",
]
