"""Multiclass Jury Selection (Section 7).

The paper notes that the simulated-annealing solver "regards computing
JQ as a black box, so it can be simply extended" to confusion-matrix
workers — which is literally what happens here: the multiclass JQ of
:mod:`repro.multiclass.quality` plugs into the generic
:func:`repro.selection.annealing.anneal_subset` loop.

Lemma 1 (more workers never hurt) extends to the multiclass model, so
the unconstrained-budget shortcut still applies; the quality-
monotonicity Lemma 2 does *not* extend (the paper leaves ranking
confusion matrices as an open question), so no top-k shortcut exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..selection.annealing import DEFAULT_EPSILON, anneal_subset
from .confusion import MultiClassWorker
from .quality import (
    DEFAULT_NUM_BUCKETS,
    estimate_jq_multiclass,
    exact_jq_multiclass,
)

#: Juries whose ``l^n`` stays below this are scored exactly.
_EXACT_STATE_CUTOFF = 60_000


class MultiClassJQObjective:
    """``indices -> JQ`` over a fixed list of multiclass workers."""

    def __init__(
        self,
        workers: Sequence[MultiClassWorker],
        prior: Sequence[float] | None = None,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        if not workers:
            raise ValueError("worker list must be non-empty")
        self.workers = tuple(workers)
        self.num_labels = workers[0].num_labels
        self.prior = prior
        self.num_buckets = num_buckets
        self.evaluations = 0

    def _empty_score(self) -> float:
        if self.prior is None:
            return 1.0 / self.num_labels
        return float(max(self.prior))

    def __call__(self, indices: tuple[int, ...]) -> float:
        self.evaluations += 1
        if not indices:
            return self._empty_score()
        jury = [self.workers[i] for i in indices]
        if self.num_labels ** len(jury) <= _EXACT_STATE_CUTOFF:
            return exact_jq_multiclass(jury, self.prior)
        return estimate_jq_multiclass(
            jury, self.prior, num_buckets=self.num_buckets
        )


@dataclass(frozen=True)
class MultiClassSelection:
    """Outcome of a multiclass JSP run."""

    indices: tuple[int, ...]
    workers: tuple[MultiClassWorker, ...]
    jq: float
    cost: float
    budget: float

    @property
    def worker_ids(self) -> tuple[str, ...]:
        return tuple(w.worker_id for w in self.workers)


def select_multiclass_jury(
    workers: Sequence[MultiClassWorker],
    budget: float,
    prior: Sequence[float] | None = None,
    rng: np.random.Generator | None = None,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    epsilon: float = DEFAULT_EPSILON,
) -> MultiClassSelection:
    """Solve the multiclass JSP with simulated annealing.

    Applies the Lemma-1 whole-pool shortcut when the budget covers
    every worker, otherwise anneals with the multiclass JQ black box.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if rng is None:
        rng = np.random.default_rng()
    objective = MultiClassJQObjective(workers, prior, num_buckets)
    costs = [w.cost for w in workers]
    if sum(costs) <= budget + 1e-12:
        indices = tuple(range(len(workers)))
    else:
        indices = anneal_subset(costs, budget, objective, rng, epsilon=epsilon)
    chosen = tuple(workers[i] for i in indices)
    return MultiClassSelection(
        indices=indices,
        workers=chosen,
        jq=objective(indices),
        cost=float(sum(w.cost for w in chosen)),
        budget=float(budget),
    )
