"""Multi-choice voting strategies (Section 7).

* :class:`MultiClassBayesianVoting` — the optimal strategy (Equation
  10): return ``argmax_t alpha_t * Pr(V | t)``, ties resolved to the
  smallest label for determinism.
* :class:`PluralityVoting` — the MV generalization: the label with the
  most votes wins, ties to the smallest tied label.
* :class:`RandomizedPluralityVoting` — vote-share-proportional
  randomized counterpart (the multiclass RMV).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.task import validate_prior_vector
from .confusion import MultiClassWorker


def _check_multiclass_votes(
    votes: Sequence[int], workers: Sequence[MultiClassWorker]
) -> np.ndarray:
    arr = np.asarray(votes, dtype=int)
    if arr.ndim != 1 or arr.size != len(workers):
        raise ValueError(f"{arr.size} votes for {len(workers)} workers")
    if arr.size == 0:
        raise ValueError("cannot vote with an empty jury")
    num_labels = workers[0].num_labels
    for worker in workers:
        if worker.num_labels != num_labels:
            raise ValueError("workers disagree on the number of labels")
    if np.any((arr < 0) | (arr >= num_labels)):
        raise ValueError(f"votes {votes!r} outside 0..{num_labels - 1}")
    return arr


def log_joint(
    votes: np.ndarray,
    workers: Sequence[MultiClassWorker],
    prior: np.ndarray,
) -> np.ndarray:
    """``log(alpha_t * Pr(V | t))`` for every label t (``-inf`` where
    the joint probability is zero)."""
    num_labels = workers[0].num_labels
    with np.errstate(divide="ignore"):
        log_prior = np.log(prior)
        scores = log_prior.copy()
        for worker, vote in zip(workers, votes):
            scores = scores + np.log(worker.confusion.matrix[:, vote])
    del num_labels
    return scores


class MultiClassBayesianVoting:
    """Optimal multiclass strategy: MAP over labels (Equation 10)."""

    name = "MC-BV"
    is_deterministic = True

    def decide(
        self,
        votes: Sequence[int],
        workers: Sequence[MultiClassWorker],
        prior: Sequence[float] | None = None,
    ) -> int:
        arr = _check_multiclass_votes(votes, workers)
        num_labels = workers[0].num_labels
        if prior is None:
            prior_vec = np.full(num_labels, 1.0 / num_labels)
        else:
            prior_vec = validate_prior_vector(prior)
            if prior_vec.size != num_labels:
                raise ValueError("prior length does not match label count")
        scores = log_joint(arr, workers, prior_vec)
        # argmax with ties to the smallest label: np.argmax already
        # returns the first maximal index.
        return int(np.argmax(scores))

    def posterior(
        self,
        votes: Sequence[int],
        workers: Sequence[MultiClassWorker],
        prior: Sequence[float] | None = None,
    ) -> np.ndarray:
        """The full posterior ``Pr(t | V)`` over labels."""
        arr = _check_multiclass_votes(votes, workers)
        num_labels = workers[0].num_labels
        if prior is None:
            prior_vec = np.full(num_labels, 1.0 / num_labels)
        else:
            prior_vec = validate_prior_vector(prior)
        scores = log_joint(arr, workers, prior_vec)
        finite = scores[np.isfinite(scores)]
        if finite.size == 0:
            return np.full(num_labels, 1.0 / num_labels)
        shifted = np.exp(scores - finite.max())
        return shifted / shifted.sum()


class PluralityVoting:
    """Most-votes-wins; ties resolve to the smallest tied label."""

    name = "MC-PLURALITY"
    is_deterministic = True

    def decide(
        self,
        votes: Sequence[int],
        workers: Sequence[MultiClassWorker],
        prior: Sequence[float] | None = None,
    ) -> int:
        arr = _check_multiclass_votes(votes, workers)
        counts = np.bincount(arr, minlength=workers[0].num_labels)
        return int(np.argmax(counts))


class RandomizedPluralityVoting:
    """Returns label ``k`` with probability (#votes for k) / n."""

    name = "MC-RPLURALITY"
    is_deterministic = False

    def label_distribution(
        self,
        votes: Sequence[int],
        workers: Sequence[MultiClassWorker],
        prior: Sequence[float] | None = None,
    ) -> np.ndarray:
        arr = _check_multiclass_votes(votes, workers)
        counts = np.bincount(arr, minlength=workers[0].num_labels)
        return counts / counts.sum()

    def decide(
        self,
        votes: Sequence[int],
        workers: Sequence[MultiClassWorker],
        prior: Sequence[float] | None = None,
        rng: np.random.Generator | None = None,
    ) -> int:
        dist = self.label_distribution(votes, workers, prior)
        if rng is None:
            raise ValueError("randomized decision requires an rng")
        return int(rng.choice(dist.size, p=dist))
