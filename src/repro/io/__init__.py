"""Plain-text persistence for pools, answers and budget tables."""

from .serialization import (
    budget_table_to_json,
    load_answers_csv,
    load_pool_csv,
    load_pool_json,
    pool_from_json,
    pool_to_json,
    save_answers_csv,
    save_budget_table_json,
    save_pool_csv,
    save_pool_json,
)

__all__ = [
    "budget_table_to_json",
    "load_answers_csv",
    "load_pool_csv",
    "load_pool_json",
    "pool_from_json",
    "pool_to_json",
    "save_answers_csv",
    "save_budget_table_json",
    "save_pool_csv",
    "save_pool_json",
]
