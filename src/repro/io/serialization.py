"""Persistence: worker pools, answer matrices and campaigns on disk.

Crowdsourcing pipelines are long-lived — qualities are estimated from
one campaign and consumed by selections weeks later — so the library
ships plain-text round-trips:

* worker pools  <-> CSV (``worker_id,quality,cost``)
* worker pools  <-> JSON
* answer matrices <-> CSV (``worker_id,task_id,label``)
* budget-quality tables -> JSON (export only: tables are derived data)

CSV was chosen over pickle deliberately: files are diffable, editable
by the task provider, and loadable from any language.
"""

from __future__ import annotations

import csv
import json
import pathlib


from ..core.worker import Worker, WorkerPool
from ..estimation.answers import AnswerMatrix
from ..selection.budget_table import BudgetQualityTable

PathLike = str | pathlib.Path


# ----------------------------------------------------------------------
# Worker pools
# ----------------------------------------------------------------------
def save_pool_csv(pool: WorkerPool, path: PathLike) -> None:
    """Write a pool as ``worker_id,quality,cost`` rows with a header."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["worker_id", "quality", "cost"])
        for worker in pool:
            writer.writerow([worker.worker_id, worker.quality, worker.cost])


def load_pool_csv(path: PathLike) -> WorkerPool:
    """Read a pool written by :func:`save_pool_csv`.

    Raises ``ValueError`` on missing columns or unparsable rows so a
    malformed file fails loudly rather than producing a silent empty
    pool.
    """
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"worker_id", "quality", "cost"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path}: expected columns {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        workers = []
        for line, row in enumerate(reader, start=2):
            try:
                workers.append(
                    Worker(
                        row["worker_id"],
                        float(row["quality"]),
                        float(row["cost"]),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line}: bad worker row: {exc}") from exc
    return WorkerPool(workers)


def pool_to_json(pool: WorkerPool) -> str:
    """Serialize a pool to a JSON string."""
    payload = [
        {"worker_id": w.worker_id, "quality": w.quality, "cost": w.cost}
        for w in pool
    ]
    return json.dumps({"workers": payload}, indent=2)


def pool_from_json(text: str) -> WorkerPool:
    """Inverse of :func:`pool_to_json`."""
    data = json.loads(text)
    if "workers" not in data:
        raise ValueError("JSON pool payload missing 'workers' key")
    return WorkerPool(
        Worker(item["worker_id"], float(item["quality"]), float(item["cost"]))
        for item in data["workers"]
    )


def save_pool_json(pool: WorkerPool, path: PathLike) -> None:
    pathlib.Path(path).write_text(pool_to_json(pool))


def load_pool_json(path: PathLike) -> WorkerPool:
    return pool_from_json(pathlib.Path(path).read_text())


# ----------------------------------------------------------------------
# Answer matrices
# ----------------------------------------------------------------------
def save_answers_csv(answers: AnswerMatrix, path: PathLike) -> None:
    """Write ``worker_id,task_id,label`` rows with a header."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["worker_id", "task_id", "label"])
        for answer in answers:
            writer.writerow([answer.worker_id, answer.task_id, answer.label])


def load_answers_csv(path: PathLike, num_labels: int = 2) -> AnswerMatrix:
    """Read an answer matrix written by :func:`save_answers_csv`."""
    matrix = AnswerMatrix(num_labels=num_labels)
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"worker_id", "task_id", "label"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path}: expected columns {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for line, row in enumerate(reader, start=2):
            try:
                matrix.record(
                    row["worker_id"], row["task_id"], int(row["label"])
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line}: bad answer row: {exc}") from exc
    return matrix


# ----------------------------------------------------------------------
# Budget-quality tables (export only)
# ----------------------------------------------------------------------
def budget_table_to_json(table: BudgetQualityTable) -> str:
    """Serialize a budget table for dashboards / archival."""
    rows = [
        {
            "budget": row.budget,
            "worker_ids": list(row.worker_ids),
            "jq": row.jq,
            "required": row.required,
        }
        for row in table.rows
    ]
    return json.dumps({"rows": rows}, indent=2)


def save_budget_table_json(table: BudgetQualityTable, path: PathLike) -> None:
    pathlib.Path(path).write_text(budget_table_to_json(table))
