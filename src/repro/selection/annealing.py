"""Simulated-annealing JSP solver (Algorithms 3 and 4).

JSP is NP-hard even with a polynomial JQ oracle (Theorem 4), so the
paper attacks it with simulated annealing over jury sets:

* *state* — a feasible jury, encoded by the indicator vector ``X``;
* *neighbourhood* — swap one selected worker for one unselected worker
  (Algorithm 4), or grow the jury when budget allows;
* *schedule* — geometric cooling ``T <- T / 2`` from 1.0 down to
  ``epsilon`` (default 1e-8, the paper's setting), with ``N`` local
  searches per temperature;
* *acceptance* — uphill moves always, downhill moves with probability
  ``exp(delta / T)`` (Boltzmann).

The annealer treats the objective as a black box (Section 7), so the
core loop is exposed as :func:`anneal_subset`, reused verbatim by the
binary BV objective (OPTJS), the MV objective (MVJS) and the
multiclass objective of :mod:`repro.multiclass.selection`.

Beyond the paper, ``track_best=True`` (default) remembers the best
subset visited rather than returning the final state — a strict
improvement that never returns a worse jury; set it to False for a
letter-faithful reproduction.

Also beyond the paper, :func:`anneal_subset_batched` replaces the
one-candidate-at-a-time inner loop with a *neighborhood* sweep: at each
temperature the full feasible move set (every growth move, every
budget-feasible swap) is scored in **one** batched-kernel call, the
best uphill move is taken greedily, and downhill moves are
Metropolis-sampled from the scored neighborhood.  Select it with
``AnnealingSelector(..., neighborhood="batched")``; the sequential
mode stays the default (and the paper-faithful chain).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..core.jury import Jury
from ..core.worker import WorkerPool
from .base import JurySelector

#: The paper's stopping temperature (Section 6.1.1).
DEFAULT_EPSILON = 1e-8

#: The paper's initial temperature (Algorithm 3, step 1).
DEFAULT_INITIAL_TEMPERATURE = 1.0

#: The paper's cooling divisor (Algorithm 3, step 14).
DEFAULT_COOLING_DIVISOR = 2.0

#: Signature of the black-box objective: indices -> score.
SubsetObjective = Callable[[tuple[int, ...]], float]


def anneal_subset(
    costs: Sequence[float],
    budget: float,
    objective: SubsetObjective,
    rng: np.random.Generator,
    epsilon: float = DEFAULT_EPSILON,
    initial_temperature: float = DEFAULT_INITIAL_TEMPERATURE,
    cooling_divisor: float = DEFAULT_COOLING_DIVISOR,
    track_best: bool = True,
) -> tuple[int, ...]:
    """Algorithm 3 over index subsets of ``range(len(costs))``.

    Returns the selected indices in ascending order.  ``objective``
    receives a tuple of indices and must return the score to maximize;
    it is treated as a black box and never differentiated, so any JQ
    flavour works.
    """
    cost_arr = np.asarray(costs, dtype=float)
    n = cost_arr.size
    if n == 0:
        return ()
    eps = 1e-12

    selected = np.zeros(n, dtype=bool)  # the X vector
    spent = 0.0  # M, the committed cost
    current_score = objective(())
    best_members: tuple[int, ...] = ()
    best_score = current_score

    def members() -> tuple[int, ...]:
        return tuple(int(i) for i in np.flatnonzero(selected))

    temperature = initial_temperature
    while temperature >= epsilon:
        for _ in range(n):
            r = int(rng.integers(n))
            if not selected[r] and spent + cost_arr[r] <= budget + eps:
                # Growth move (Algorithm 3 steps 9-11): by Lemma 1
                # adding a worker cannot hurt BV-JQ, and the paper
                # accepts the move unconditionally.
                selected[r] = True
                spent += cost_arr[r]
                current_score = objective(members())
            else:
                spent, current_score = _swap(
                    selected,
                    spent,
                    current_score,
                    r,
                    budget,
                    temperature,
                    cost_arr,
                    objective,
                    rng,
                )
            if track_best and current_score > best_score:
                best_score = current_score
                best_members = members()
        temperature /= cooling_divisor

    final_members = members()
    if track_best and best_score > current_score:
        final_members = best_members
    return final_members


def _swap(
    selected: np.ndarray,
    spent: float,
    current_score: float,
    r: int,
    budget: float,
    temperature: float,
    costs: np.ndarray,
    objective: SubsetObjective,
    rng: np.random.Generator,
) -> tuple[float, float]:
    """Algorithm 4: one swap attempt; returns updated (spent, score)."""
    chosen = np.flatnonzero(selected)
    unchosen = np.flatnonzero(~selected)
    if not selected[r]:
        # r is outside: evict a random member `a`, admit r.
        if chosen.size == 0:
            return spent, current_score
        a = int(chosen[rng.integers(chosen.size)])
        b = r
    else:
        # r is inside: evict r, admit a random outsider `b`.
        if unchosen.size == 0:
            return spent, current_score
        a = r
        b = int(unchosen[rng.integers(unchosen.size)])

    new_spent = spent - costs[a] + costs[b]
    if new_spent > budget + 1e-12:
        return spent, current_score

    selected[a] = False
    selected[b] = True
    candidate = objective(tuple(int(i) for i in np.flatnonzero(selected)))
    delta = candidate - current_score
    accept = delta >= 0 or rng.random() <= math.exp(delta / temperature)
    if accept:
        return new_spent, candidate
    # Roll back the tentative swap.
    selected[a] = True
    selected[b] = False
    return spent, current_score


def _neighborhood(
    selected: np.ndarray,
    spent: float,
    budget: float,
    costs: np.ndarray,
) -> tuple[list[tuple[int, ...]], list[float]]:
    """All feasible one-move neighbours of the current state: growth
    moves (Algorithm 3 steps 9-11) and swaps (Algorithm 4), each as the
    member tuple it would produce.  Deterministic enumeration order."""
    chosen = np.flatnonzero(selected)
    unchosen = np.flatnonzero(~selected)
    eps = 1e-12
    subsets: list[tuple[int, ...]] = []
    spends: list[float] = []
    for b in unchosen:
        if spent + costs[b] <= budget + eps:
            subsets.append(
                tuple(int(i) for i in np.sort(np.append(chosen, b)))
            )
            spends.append(spent + float(costs[b]))
    for a in chosen:
        kept = chosen[chosen != a]
        for b in unchosen:
            new_spent = spent - costs[a] + costs[b]
            if new_spent > budget + eps:
                continue
            subsets.append(
                tuple(int(i) for i in np.sort(np.append(kept, b)))
            )
            spends.append(float(new_spent))
    return subsets, spends


def anneal_subset_batched(
    costs: Sequence[float],
    budget: float,
    batch_objective,
    rng: np.random.Generator,
    epsilon: float = DEFAULT_EPSILON,
    initial_temperature: float = DEFAULT_INITIAL_TEMPERATURE,
    cooling_divisor: float = DEFAULT_COOLING_DIVISOR,
    track_best: bool = True,
) -> tuple[int, ...]:
    """Neighborhood-batched annealing (beyond the paper).

    Per temperature step the entire feasible move set is scored with
    **one** ``batch_objective`` call — a single kernel sweep instead of
    ``N`` scalar JQ evaluations — then: take the best move if it is
    uphill (greedy ascent), otherwise Metropolis-accept one uniformly
    drawn downhill move with probability ``exp(delta / T)``.  The chain
    differs from :func:`anneal_subset` (different proposal
    distribution), but explores the same neighbourhood structure and
    respects the same budget feasibility invariant.
    """
    cost_arr = np.asarray(costs, dtype=float)
    n = cost_arr.size
    if n == 0:
        return ()
    selected = np.zeros(n, dtype=bool)
    spent = 0.0
    current_score = float(batch_objective([()])[0])
    best_members: tuple[int, ...] = ()
    best_score = current_score

    temperature = initial_temperature
    while temperature >= epsilon:
        subsets, spends = _neighborhood(selected, spent, budget, cost_arr)
        if not subsets:
            break  # isolated state: no feasible move at any temperature
        scores = np.asarray(batch_objective(subsets), dtype=float)
        move = int(np.argmax(scores))
        delta = float(scores[move]) - current_score
        if delta < 0:
            # Nothing uphill: Metropolis-sample a downhill move.
            move = int(rng.integers(len(subsets)))
            delta = float(scores[move]) - current_score
            if rng.random() > math.exp(delta / temperature):
                move = -1
        if move >= 0:
            selected[:] = False
            selected[list(subsets[move])] = True
            spent = spends[move]
            current_score = float(scores[move])
            if track_best and current_score > best_score:
                best_score = current_score
                best_members = subsets[move]
        temperature /= cooling_divisor

    final_members = tuple(int(i) for i in np.flatnonzero(selected))
    if track_best and best_score > current_score:
        final_members = best_members
    return final_members


class AnnealingSelector(JurySelector):
    """Algorithm 3 (JSP) with the Algorithm 4 swap neighbourhood.

    ``neighborhood="sequential"`` (default) is the paper's chain;
    ``"batched"`` scores each temperature step's whole neighbourhood in
    one batched-kernel call (see :func:`anneal_subset_batched`).
    """

    name = "annealing"

    def __init__(
        self,
        objective=None,
        epsilon: float = DEFAULT_EPSILON,
        initial_temperature: float = DEFAULT_INITIAL_TEMPERATURE,
        cooling_divisor: float = DEFAULT_COOLING_DIVISOR,
        track_best: bool = True,
        restarts: int = 1,
        neighborhood: str = "sequential",
    ) -> None:
        super().__init__(objective)
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if initial_temperature <= epsilon:
            raise ValueError("initial_temperature must exceed epsilon")
        if cooling_divisor <= 1.0:
            raise ValueError("cooling_divisor must exceed 1")
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        if neighborhood not in ("sequential", "batched"):
            raise ValueError(
                "neighborhood must be 'sequential' or 'batched'"
            )
        if neighborhood == "batched" and not getattr(
            self.objective, "supports_batch", False
        ):
            raise ValueError(
                "neighborhood='batched' requires an objective with "
                "batch support (objective.supports_batch); pass "
                "neighborhood='sequential' for scalar-only objectives"
            )
        self.epsilon = epsilon
        self.initial_temperature = initial_temperature
        self.cooling_divisor = cooling_divisor
        self.track_best = track_best
        # The single-swap neighbourhood has genuine local optima (e.g.
        # a full-budget jury none of whose single swaps is feasible);
        # independent restarts are the classic escape hatch.  restarts=1
        # is the paper-faithful configuration.
        self.restarts = restarts
        self.neighborhood = neighborhood

    def _select(
        self, pool: WorkerPool, budget: float, rng: np.random.Generator
    ) -> Jury:
        workers = pool.workers
        qualities = pool.qualities

        def score(indices: tuple[int, ...]) -> float:
            return self.objective(Jury(workers[i] for i in indices))

        def batch_score(subsets: list[tuple[int, ...]]) -> np.ndarray:
            return self.objective.batch_qualities(
                [qualities[list(s)] for s in subsets]
            )

        best_jury: Jury | None = None
        best_score = -np.inf
        for _ in range(self.restarts):
            if self.neighborhood == "batched":
                chosen = anneal_subset_batched(
                    pool.costs,
                    budget,
                    batch_score,
                    rng,
                    epsilon=self.epsilon,
                    initial_temperature=self.initial_temperature,
                    cooling_divisor=self.cooling_divisor,
                    track_best=self.track_best,
                )
            else:
                chosen = anneal_subset(
                    pool.costs,
                    budget,
                    score,
                    rng,
                    epsilon=self.epsilon,
                    initial_temperature=self.initial_temperature,
                    cooling_divisor=self.cooling_divisor,
                    track_best=self.track_best,
                )
            jury = Jury(workers[i] for i in chosen)
            jury_score = score(chosen)
            if jury_score > best_score:
                best_score = jury_score
                best_jury = jury
        assert best_jury is not None  # restarts >= 1
        return best_jury
