"""Closed-form JSP special cases from the Section-5 monotonicity lemmas.

Lemma 1 (monotonicity on jury size): adding a worker never decreases
``JQ(J, BV, alpha)``.  Lemma 2 (monotonicity on quality): raising one
member's quality (at or above 0.5) never decreases it.  Consequences:

* **Volunteers / unconstrained budget** — when every worker is free, or
  the budget covers the whole pool, the optimal jury is all of ``W``
  (:func:`select_all_if_unconstrained`).
* **Uniform cost c** — the optimal jury is the top
  ``k = min(floor(B / c), N)`` workers by quality
  (:func:`select_top_k_uniform_cost`).

The module also exposes numeric checkers for the two lemmas that the
property-based tests (and any cautious caller) can run on concrete
juries.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR
from ..core.worker import Worker, WorkerPool
from ..quality import exact_jq_bv


def select_all_if_unconstrained(pool: WorkerPool, budget: float) -> Jury | None:
    """The whole pool, when Lemma 1 says that is optimal.

    Returns ``None`` when the condition (total pool cost within budget)
    does not hold and a real search is needed.
    """
    if pool.total_cost <= budget + 1e-12:
        return Jury(pool.workers)
    return None


def select_top_k_uniform_cost(
    pool: WorkerPool, budget: float, cost: float | None = None
) -> Jury | None:
    """Optimal jury when every worker charges the same cost.

    Returns the top ``k = min(floor(B / c), N)`` workers by quality
    (Lemma 2), or ``None`` when costs are not uniform.  With ``c = 0``
    the answer degenerates to the whole pool via Lemma 1.
    """
    if len(pool) == 0:
        return Jury(())
    costs = pool.costs
    if cost is None:
        cost = float(costs[0])
    if not np.allclose(costs, cost, atol=1e-12):
        return None
    if cost <= 0.0:
        return Jury(pool.workers)
    k = min(int(math.floor((budget + 1e-12) / cost)), len(pool))
    ranked = pool.sorted_by_quality()
    return Jury(ranked[i] for i in range(k))


# ----------------------------------------------------------------------
# Numeric lemma checkers (used by property tests)
# ----------------------------------------------------------------------
def check_size_monotonicity(
    jury: Jury, extra: Worker, alpha: float = UNINFORMATIVE_PRIOR
) -> tuple[float, float]:
    """Evaluate Lemma 1 on a concrete instance.

    Returns ``(jq_before, jq_after)`` for ``J`` and ``J + extra``; the
    lemma asserts ``jq_after >= jq_before``.
    """
    before = exact_jq_bv(jury.qualities, alpha) if len(jury) else max(
        alpha, 1.0 - alpha
    )
    after = exact_jq_bv(jury.with_worker(extra).qualities, alpha)
    return before, after


def check_quality_monotonicity(
    jury: Jury,
    member_index: int,
    new_quality: float,
    alpha: float = UNINFORMATIVE_PRIOR,
) -> tuple[float, float]:
    """Evaluate Lemma 2 on a concrete instance.

    Returns ``(jq_before, jq_after)`` where ``after`` raises member
    ``member_index``'s quality to ``new_quality``.  The lemma requires
    ``0.5 <= q <= new_quality``.
    """
    worker = jury[member_index]
    if not 0.5 <= worker.quality <= new_quality <= 1.0:
        raise ValueError(
            "Lemma 2 requires 0.5 <= current quality <= new quality <= 1"
        )
    before = exact_jq_bv(jury.qualities, alpha)
    upgraded = jury.replace_worker(
        worker.worker_id, worker.with_quality(new_quality)
    )
    after = exact_jq_bv(upgraded.qualities, alpha)
    return before, after
