"""Jury-selection interfaces: objectives and the selector ABC.

The Jury Selection Problem (Section 2.2) is

    J* = argmax_{J subset of W, cost(J) <= B}  max_S JQ(J, S, alpha).

By Theorem 1 the inner maximum is attained by Bayesian Voting, so a
*selector* maximizes a fixed-strategy objective ``JQ(J, S, alpha)``
over feasible juries.  :class:`JQObjective` packages the strategy and
the JQ algorithm (exact / bucket / Poisson-binomial) behind a single
callable and counts evaluations so benchmarks can report work done.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR, validate_prior
from ..core.worker import WorkerPool
from ..quality import (
    ALL_SUBSETS_MAX,
    DEFAULT_NUM_BUCKETS,
    all_subsets_jq_bv,
    estimate_jq,
    estimate_jq_batch,
    exact_jq,
    exact_jq_bv,
    exact_jq_bv_batch,
    exact_jq_mv,
)
from ..voting.base import VotingStrategy
from ..voting.bayesian import BayesianVoting
from ..voting.majority import MajorityVoting


class JQObjective:
    """The objective ``J -> JQ(J, S, alpha)`` for a fixed strategy.

    Parameters
    ----------
    strategy:
        The voting strategy whose JQ is maximized.  Defaults to
        Bayesian Voting (giving the paper's OPTJS); pass
        :class:`MajorityVoting` for the MVJS baseline.
    alpha:
        The task prior.
    num_buckets:
        Bucket resolution when the BV estimator is used.
    exact_cutoff:
        BV juries at or below this size are evaluated exactly; above
        it the (fast, <1%-error) bucket estimator takes over.  The
        default of 12 keeps a single evaluation under a millisecond,
        which matters inside the annealer's thousands of calls.

    Notes
    -----
    The empty jury is scored ``max(alpha, 1 - alpha)``: with no votes,
    the best any strategy can do is answer the prior's mode.
    """

    def __init__(
        self,
        strategy: VotingStrategy | None = None,
        alpha: float = UNINFORMATIVE_PRIOR,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        exact_cutoff: int = 12,
    ) -> None:
        self.strategy = strategy if strategy is not None else BayesianVoting()
        self.alpha = validate_prior(alpha)
        self.num_buckets = num_buckets
        self.exact_cutoff = exact_cutoff
        self.evaluations = 0

    @property
    def is_monotone(self) -> bool:
        """True when adding a worker can never decrease the objective.

        Lemma 1 proves this for BV.  It is false for MV (a low-quality
        extra voter can flip majorities), so exhaustive search must not
        restrict itself to maximal juries under MV.
        """
        return isinstance(self.strategy, BayesianVoting)

    def __call__(self, jury: Jury) -> float:
        self.evaluations += 1
        qualities = jury.qualities
        if qualities.size == 0:
            return max(self.alpha, 1.0 - self.alpha)
        if isinstance(self.strategy, BayesianVoting):
            if qualities.size <= self.exact_cutoff:
                return exact_jq_bv(qualities, self.alpha)
            return estimate_jq(
                qualities, alpha=self.alpha, num_buckets=self.num_buckets
            )
        if isinstance(self.strategy, MajorityVoting):
            return exact_jq_mv(qualities, self.alpha)
        return exact_jq(qualities, self.strategy, self.alpha)

    # ------------------------------------------------------------------
    # Batched evaluation (the kernel surface selectors/frontiers use)
    # ------------------------------------------------------------------
    @property
    def supports_batch(self) -> bool:
        """True when :meth:`batch_qualities` is available — always, for
        a stock objective; the flag exists so callers can gate batching
        on duck-typed objective arguments."""
        return True

    def batch_qualities(self, rows) -> np.ndarray:
        """JQ of many juries given as raw quality vectors.

        One entry per row, bit-identical to calling the objective on
        each jury separately (the property tests pin this); BV rows are
        evaluated through the batched kernels of
        :mod:`repro.quality.batch`, split at ``exact_cutoff`` exactly
        like :meth:`__call__`.  Empty rows score the prior's mode.
        Counts one evaluation per row.
        """
        self.evaluations += len(rows)
        arrays = [np.asarray(row, dtype=float) for row in rows]
        out = np.empty(len(arrays))
        baseline = max(self.alpha, 1.0 - self.alpha)
        if isinstance(self.strategy, BayesianVoting):
            exact_rows: list[int] = []
            bucket_rows: list[int] = []
            for i, arr in enumerate(arrays):
                if arr.size == 0:
                    out[i] = baseline
                elif arr.size <= self.exact_cutoff:
                    exact_rows.append(i)
                else:
                    bucket_rows.append(i)
            if exact_rows:
                out[exact_rows] = exact_jq_bv_batch(
                    [arrays[i] for i in exact_rows], self.alpha
                )
            if bucket_rows:
                out[bucket_rows] = estimate_jq_batch(
                    [arrays[i] for i in bucket_rows],
                    alpha=self.alpha,
                    num_buckets=self.num_buckets,
                )
            return out
        for i, arr in enumerate(arrays):
            if arr.size == 0:
                out[i] = baseline
            elif isinstance(self.strategy, MajorityVoting):
                out[i] = exact_jq_mv(arr, self.alpha)
            else:
                out[i] = exact_jq(arr, self.strategy, self.alpha)
        return out

    def batch(self, juries: "list[Jury]") -> np.ndarray:
        """JQ of many juries in one kernel sweep (see
        :meth:`batch_qualities`)."""
        return self.batch_qualities([jury.qualities for jury in juries])

    def all_subsets(self, qualities) -> np.ndarray | None:
        """JQ of every subset (indexed by bitmask) of a candidate pool
        via the shared-prefix lattice, or ``None`` when the lattice does
        not apply (non-BV strategy, or pool too large) and the caller
        should fall back to :meth:`batch_qualities`/scalar calls.

        Does **not** touch the evaluation counter — callers account for
        the subsets they actually consume.
        """
        arr = np.asarray(qualities, dtype=float)
        if not isinstance(self.strategy, BayesianVoting):
            return None
        if arr.size > ALL_SUBSETS_MAX:
            return None
        return all_subsets_jq_bv(
            arr,
            alpha=self.alpha,
            exact_cutoff=self.exact_cutoff,
            num_buckets=self.num_buckets,
        )

    def reset_counter(self) -> None:
        self.evaluations = 0

    def __repr__(self) -> str:
        return (
            f"JQObjective(strategy={self.strategy.name}, "
            f"alpha={self.alpha}, num_buckets={self.num_buckets})"
        )


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one jury-selection run.

    Attributes
    ----------
    jury:
        The selected jury (possibly empty when nothing is affordable).
    jq:
        The jury's objective value (JQ under the selector's strategy).
    cost:
        The jury cost.
    budget:
        The budget the selection ran under.
    evaluations:
        Number of JQ evaluations the selector performed.
    elapsed_seconds:
        Wall-clock time of the selection.
    selector:
        Name of the selector that produced this result.
    """

    jury: Jury
    jq: float
    cost: float
    budget: float
    evaluations: int = 0
    elapsed_seconds: float = 0.0
    selector: str = ""

    @property
    def worker_ids(self) -> tuple[str, ...]:
        return self.jury.worker_ids


class JurySelector(ABC):
    """Abstract JSP solver.

    Subclasses implement :meth:`_select`; :meth:`select` wraps it with
    validation, timing and evaluation counting.
    """

    name: str = "abstract"

    def __init__(self, objective: JQObjective | None = None) -> None:
        self.objective = objective if objective is not None else JQObjective()

    def select(
        self,
        pool: WorkerPool,
        budget: float,
        rng: np.random.Generator | None = None,
    ) -> SelectionResult:
        """Solve JSP over ``pool`` under ``budget``.

        ``rng`` seeds stochastic selectors; deterministic selectors
        ignore it.
        """
        if budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        if rng is None:
            rng = np.random.default_rng()
        self.objective.reset_counter()
        start = time.perf_counter()
        jury = self._select(pool, float(budget), rng)
        elapsed = time.perf_counter() - start
        evaluations = self.objective.evaluations
        jq = self.objective(jury)
        return SelectionResult(
            jury=jury,
            jq=jq,
            cost=jury.cost,
            budget=float(budget),
            evaluations=evaluations,
            elapsed_seconds=elapsed,
            selector=self.name,
        )

    @abstractmethod
    def _select(
        self, pool: WorkerPool, budget: float, rng: np.random.Generator
    ) -> Jury:
        """Return a feasible jury (subclass hook)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(objective={self.objective!r})"
