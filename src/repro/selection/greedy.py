"""Greedy JSP baselines.

Neither greedy is part of the paper's solution; they exist as cheap
baselines for the ablation benchmarks and as building blocks for the
MVJS repair heuristic.

* :class:`GreedyQualitySelector` — admit workers by descending quality
  while they fit the remaining budget.  Optimal in the uniform-cost
  special case (Lemma 2 / Section 5).
* :class:`GreedyRatioSelector` — admit by descending "information per
  cost", scoring each worker by her log-odds ``phi(q)`` divided by her
  cost (free workers first: Lemma 1 says they can never hurt).
"""

from __future__ import annotations

import numpy as np

from ..core.jury import Jury
from ..core.worker import WorkerPool
from ..quality.bucket import log_odds
from .base import JurySelector


class GreedyQualitySelector(JurySelector):
    """Admit by descending quality while affordable."""

    name = "greedy-quality"

    def _select(
        self, pool: WorkerPool, budget: float, rng: np.random.Generator
    ) -> Jury:
        members = []
        remaining = budget
        eps = 1e-12
        for worker in pool.sorted_by_quality():
            if worker.cost <= remaining + eps:
                members.append(worker)
                remaining -= worker.cost
        return Jury(members)


class GreedyRatioSelector(JurySelector):
    """Admit by descending log-odds-per-cost while affordable.

    Free workers (cost 0) carry infinite ratio and are admitted first,
    highest quality first, which matches the Lemma-1 guidance that
    volunteers always help BV.
    """

    name = "greedy-ratio"

    def _select(
        self, pool: WorkerPool, budget: float, rng: np.random.Generator
    ) -> Jury:
        def score(worker) -> tuple[float, float]:
            phi = log_odds(max(worker.quality, 1.0 - worker.quality))
            ratio = np.inf if worker.cost == 0 else phi / worker.cost
            return (ratio, worker.quality)

        members = []
        remaining = budget
        eps = 1e-12
        for worker in sorted(pool, key=score, reverse=True):
            if worker.cost <= remaining + eps:
                members.append(worker)
                remaining -= worker.cost
        return Jury(members)
