"""Budget–quality tables: the Figure-1 "Optimal Jury Selection System".

The task provider supplies a list of candidate budgets; each row of the
table reports, for one budget, the selected jury, its estimated JQ and
the money actually required.  Providers use the table to pick a
budget–quality sweet spot (the paper's example: going from 15 to 20
units buys only ~2.5% quality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.worker import WorkerPool
from .base import JurySelector, SelectionResult


@dataclass(frozen=True)
class BudgetTableRow:
    """One row of the budget–quality table."""

    budget: float
    worker_ids: tuple[str, ...]
    jq: float
    required: float

    @property
    def marginal_note(self) -> str:  # pragma: no cover - formatting only
        return (
            f"B={self.budget:g}: jury {{{', '.join(self.worker_ids)}}} "
            f"JQ={self.jq:.4f} cost={self.required:g}"
        )


@dataclass(frozen=True)
class BudgetQualityTable:
    """The full table plus the raw selection results."""

    rows: tuple[BudgetTableRow, ...]
    results: tuple[SelectionResult, ...]

    def best_value_row(self, min_gain: float = 0.0) -> BudgetTableRow:
        """The cheapest row after which every further budget increase
        improves JQ by at most ``min_gain`` — the provider's "sweet
        spot" heuristic from the Figure-1 walkthrough."""
        if not self.rows:
            raise ValueError("empty budget table")
        chosen = self.rows[-1]
        for i in range(len(self.rows) - 1):
            remaining_gain = self.rows[-1].jq - self.rows[i].jq
            if remaining_gain <= min_gain + 1e-12:
                chosen = self.rows[i]
                break
        return chosen

    def render(self) -> str:
        """Plain-text rendering in the Figure-1 layout."""
        header = f"{'Budget':>8} | {'Optimal Jury Set':<28} | {'Quality':>8} | {'Required':>8}"
        lines = [header, "-" * len(header)]
        for row in self.rows:
            jury = "{" + ", ".join(row.worker_ids) + "}"
            lines.append(
                f"{row.budget:>8g} | {jury:<28} | {row.jq:>7.2%} | {row.required:>8g}"
            )
        return "\n".join(lines)


def budget_quality_table(
    pool: WorkerPool,
    budgets: Sequence[float],
    selector: JurySelector,
    rng: np.random.Generator | None = None,
) -> BudgetQualityTable:
    """Run the selector once per budget and assemble the table.

    Budgets are processed in ascending order; rows keep the caller's
    requested budgets.
    """
    if rng is None:
        rng = np.random.default_rng()
    rows: list[BudgetTableRow] = []
    results: list[SelectionResult] = []
    for budget in sorted(float(b) for b in budgets):
        result = selector.select(pool, budget, rng=rng)
        results.append(result)
        rows.append(
            BudgetTableRow(
                budget=budget,
                worker_ids=result.worker_ids,
                jq=result.jq,
                required=result.cost,
            )
        )
    return BudgetQualityTable(tuple(rows), tuple(results))
