"""Budget–quality tables: the Figure-1 "Optimal Jury Selection System".

The task provider supplies a list of candidate budgets; each row of the
table reports, for one budget, the selected jury, its estimated JQ and
the money actually required.  Providers use the table to pick a
budget–quality sweet spot (the paper's example: going from 15 to 20
units buys only ~2.5% quality).

Two construction paths:

* :func:`budget_quality_table` — one selector run per budget (any
  selector, any pool size).
* :func:`frontier_budget_table` — for small pools, **one** batched
  all-subsets kernel sweep builds the exact cost-JQ frontier and every
  budget row reads off it (the frontier subsumes the budget table: the
  optimal jury at budget B is the best frontier point costing <= B).
  One sweep instead of len(budgets) exhaustive enumerations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.jury import Jury
from ..core.worker import WorkerPool
from .base import JQObjective, JurySelector, SelectionResult


@dataclass(frozen=True)
class BudgetTableRow:
    """One row of the budget–quality table."""

    budget: float
    worker_ids: tuple[str, ...]
    jq: float
    required: float

    @property
    def marginal_note(self) -> str:  # pragma: no cover - formatting only
        return (
            f"B={self.budget:g}: jury {{{', '.join(self.worker_ids)}}} "
            f"JQ={self.jq:.4f} cost={self.required:g}"
        )


@dataclass(frozen=True)
class BudgetQualityTable:
    """The full table plus the raw selection results."""

    rows: tuple[BudgetTableRow, ...]
    results: tuple[SelectionResult, ...]

    def best_value_row(self, min_gain: float = 0.0) -> BudgetTableRow:
        """The cheapest row after which every further budget increase
        improves JQ by at most ``min_gain`` — the provider's "sweet
        spot" heuristic from the Figure-1 walkthrough."""
        if not self.rows:
            raise ValueError("empty budget table")
        chosen = self.rows[-1]
        for i in range(len(self.rows) - 1):
            remaining_gain = self.rows[-1].jq - self.rows[i].jq
            if remaining_gain <= min_gain + 1e-12:
                chosen = self.rows[i]
                break
        return chosen

    def render(self) -> str:
        """Plain-text rendering in the Figure-1 layout."""
        header = f"{'Budget':>8} | {'Optimal Jury Set':<28} | {'Quality':>8} | {'Required':>8}"
        lines = [header, "-" * len(header)]
        for row in self.rows:
            jury = "{" + ", ".join(row.worker_ids) + "}"
            lines.append(
                f"{row.budget:>8g} | {jury:<28} | {row.jq:>7.2%} | {row.required:>8g}"
            )
        return "\n".join(lines)


def budget_quality_table(
    pool: WorkerPool,
    budgets: Sequence[float],
    selector: JurySelector,
    rng: np.random.Generator | None = None,
) -> BudgetQualityTable:
    """Run the selector once per budget and assemble the table.

    Budgets are processed in ascending order; rows keep the caller's
    requested budgets.
    """
    if rng is None:
        rng = np.random.default_rng()
    rows: list[BudgetTableRow] = []
    results: list[SelectionResult] = []
    for budget in sorted(float(b) for b in budgets):
        result = selector.select(pool, budget, rng=rng)
        results.append(result)
        rows.append(
            BudgetTableRow(
                budget=budget,
                worker_ids=result.worker_ids,
                jq=result.jq,
                required=result.cost,
            )
        )
    return BudgetQualityTable(tuple(rows), tuple(results))


def frontier_budget_table(
    pool: WorkerPool,
    budgets: Sequence[float],
    objective: JQObjective | None = None,
    max_pool: int = 18,
) -> BudgetQualityTable:
    """Exact budget–quality table from one kernel-built frontier.

    Equivalent to running :class:`ExhaustiveSelector` once per budget
    (every row is the true optimum under Lemma-1 monotone objectives),
    but the ``2^n`` candidate juries are scored exactly once, in one
    batched all-subsets sweep.  The frontier-construction cost is
    attributed to the first result's ``evaluations``/``elapsed_seconds``.
    """
    # Imported here: repro.frontier imports this package for the
    # annealing-sampled frontier, so a module-level import would cycle.
    from ..frontier import exact_frontier

    if objective is None:
        objective = JQObjective()
    objective.reset_counter()
    start = time.perf_counter()
    frontier = exact_frontier(pool, objective, max_pool=max_pool)
    elapsed = time.perf_counter() - start
    evaluations = objective.evaluations
    baseline = max(objective.alpha, 1.0 - objective.alpha)
    rows: list[BudgetTableRow] = []
    results: list[SelectionResult] = []
    for i, budget in enumerate(sorted(float(b) for b in budgets)):
        point = frontier.best_under(budget)
        if point is None:
            jury, jq, cost = Jury(()), baseline, 0.0
        else:
            jury = Jury(pool.get(wid) for wid in point.worker_ids)
            jq, cost = point.jq, point.cost
        results.append(
            SelectionResult(
                jury=jury,
                jq=jq,
                cost=cost,
                budget=budget,
                evaluations=evaluations if i == 0 else 0,
                elapsed_seconds=elapsed if i == 0 else 0.0,
                selector="frontier",
            )
        )
        rows.append(
            BudgetTableRow(
                budget=budget,
                worker_ids=jury.worker_ids,
                jq=jq,
                required=cost,
            )
        )
    return BudgetQualityTable(tuple(rows), tuple(results))
