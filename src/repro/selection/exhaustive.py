"""Exhaustive JSP solver: the ground truth for small candidate pools.

Enumerates every feasible jury and returns the objective maximizer.
For monotone objectives (BV, by Lemma 1) only *maximal* feasible juries
need scoring — a jury with room left in the budget for another
affordable worker is dominated by its extension — which cuts the number
of JQ evaluations dramatically.  Non-monotone objectives (MV) score
every feasible jury.

The paper uses exactly this enumeration to obtain ``J*`` for the
Figure 7(a) / Table 3 comparisons at N = 11.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import EnumerationLimitError
from ..core.jury import Jury
from ..core.worker import WorkerPool
from .base import JurySelector

#: Pools larger than this raise rather than enumerate 2^N juries.
DEFAULT_MAX_POOL = 22


class ExhaustiveSelector(JurySelector):
    """Optimal JSP by enumeration (exponential in the pool size)."""

    name = "exhaustive"

    def __init__(self, objective=None, max_pool: int = DEFAULT_MAX_POOL) -> None:
        super().__init__(objective)
        self.max_pool = max_pool

    def _select(
        self, pool: WorkerPool, budget: float, rng: np.random.Generator
    ) -> Jury:
        n = len(pool)
        if n > self.max_pool:
            raise EnumerationLimitError(
                f"exhaustive JSP enumerates 2^{n} juries; pool size {n} "
                f"exceeds the limit {self.max_pool}"
            )
        costs = pool.costs
        workers = pool.workers
        monotone = self.objective.is_monotone
        eps = 1e-12

        best_jury = Jury(())
        best_jq = -np.inf
        for mask in range(1 << n):
            members = [i for i in range(n) if mask >> i & 1]
            cost = float(costs[members].sum()) if members else 0.0
            if cost > budget + eps:
                continue
            if monotone:
                # Skip non-maximal juries: some excluded worker fits.
                slack = budget - cost
                if any(
                    not (mask >> i & 1) and costs[i] <= slack + eps
                    for i in range(n)
                ):
                    continue
            jury = Jury(workers[i] for i in members)
            if len(jury) == 0:
                continue
            jq = self.objective(jury)
            if jq > best_jq + eps or (
                abs(jq - best_jq) <= eps and jury.cost < best_jury.cost
            ):
                best_jq = jq
                best_jury = jury
        return best_jury


def optimal_jq(
    pool: WorkerPool,
    budget: float,
    objective=None,
    max_pool: int = DEFAULT_MAX_POOL,
) -> float:
    """Convenience: the optimal objective value ``JQ(J*)`` for a pool.

    Used by the Figure 7(a)/Table 3 experiments to measure how far the
    annealing heuristic lands from the true optimum.
    """
    selector = ExhaustiveSelector(objective, max_pool=max_pool)
    return selector.select(pool, budget).jq
