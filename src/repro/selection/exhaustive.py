"""Exhaustive JSP solver: the ground truth for small candidate pools.

Enumerates every feasible jury and returns the objective maximizer.
For monotone objectives (BV, by Lemma 1) only *maximal* feasible juries
need scoring — a jury with room left in the budget for another
affordable worker is dominated by its extension — which cuts the number
of JQ evaluations dramatically.  Non-monotone objectives (MV) score
every feasible jury.

Surviving candidates are scored in order-preserving chunks through
:meth:`~repro.selection.base.JQObjective.batch_qualities`, so the JQ
work is one vectorized kernel sweep per chunk rather than a Python-level
dynamic program per jury; values (and therefore the selected jury) are
bit-identical to the historical scalar loop, which remains available as
``implementation="scalar"``.

The paper uses exactly this enumeration to obtain ``J*`` for the
Figure 7(a) / Table 3 comparisons at N = 11.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import EnumerationLimitError
from ..core.jury import Jury
from ..core.worker import WorkerPool
from ..quality import all_subset_costs
from .base import JurySelector

#: Pools larger than this raise rather than enumerate 2^N juries.
DEFAULT_MAX_POOL = 22

#: Candidate juries buffered between kernel sweeps.
_CHUNK = 4096


class ExhaustiveSelector(JurySelector):
    """Optimal JSP by enumeration (exponential in the pool size)."""

    name = "exhaustive"

    def __init__(
        self,
        objective=None,
        max_pool: int = DEFAULT_MAX_POOL,
        implementation: str = "auto",
    ) -> None:
        super().__init__(objective)
        if implementation not in ("auto", "batch", "scalar"):
            raise ValueError(f"unknown implementation {implementation!r}")
        self.max_pool = max_pool
        self.implementation = implementation

    def _select(
        self, pool: WorkerPool, budget: float, rng: np.random.Generator
    ) -> Jury:
        n = len(pool)
        if n > self.max_pool:
            raise EnumerationLimitError(
                f"exhaustive JSP enumerates 2^{n} juries; pool size {n} "
                f"exceeds the limit {self.max_pool}"
            )
        use_batch = self.implementation == "batch" or (
            self.implementation == "auto"
            and getattr(self.objective, "supports_batch", False)
        )
        if use_batch:
            return self._select_batch(pool, budget)
        return self._select_scalar(pool, budget)

    def _feasible_masks(self, pool: WorkerPool, budget: float):
        """Yield ``(members, cost)`` for every jury worth scoring, in
        mask order — shared by both implementations so they consider
        the identical candidate sequence."""
        n = len(pool)
        costs = pool.costs
        monotone = self.objective.is_monotone
        eps = 1e-12
        # Vectorized prescreen: one subset-sum kernel sweep rejects the
        # clearly-over-budget masks before any per-mask Python work.
        # The kernel's float association can differ from the scalar
        # summation by rounding, so the margin keeps every borderline
        # mask in — those get the exact (bit-parity) check below, and
        # the yielded sequence is unchanged.  Only built when it can
        # pay for its 2^n-float footprint: a pool the loop covers in
        # microseconds, or a budget the whole pool fits under, filters
        # nothing.
        prescreen = budget + eps + 1e-6 * (1.0 + abs(budget))
        cost_table = None
        if n >= 12 and float(costs.sum()) > prescreen:
            cost_table = all_subset_costs(costs)
        for mask in range(1, 1 << n):
            if cost_table is not None and cost_table[mask] > prescreen:
                continue
            members = [i for i in range(n) if mask >> i & 1]
            cost = float(costs[members].sum())
            if cost > budget + eps:
                continue
            if monotone:
                # Skip non-maximal juries: some excluded worker fits.
                slack = budget - cost
                if any(
                    not (mask >> i & 1) and costs[i] <= slack + eps
                    for i in range(n)
                ):
                    continue
            yield members, cost

    def _select_scalar(self, pool: WorkerPool, budget: float) -> Jury:
        """The historical one-jury-at-a-time loop (regression oracle)."""
        workers = pool.workers
        eps = 1e-12
        best_jury = Jury(())
        best_jq = -np.inf
        for members, _ in self._feasible_masks(pool, budget):
            jury = Jury(workers[i] for i in members)
            jq = self.objective(jury)
            if jq > best_jq + eps or (
                abs(jq - best_jq) <= eps and jury.cost < best_jury.cost
            ):
                best_jq = jq
                best_jury = jury
        return best_jury

    def _select_batch(self, pool: WorkerPool, budget: float) -> Jury:
        workers = pool.workers
        qualities = pool.qualities
        eps = 1e-12
        best_members: list[int] | None = None
        best_jq = -np.inf
        best_cost = 0.0  # the empty fallback jury's cost
        pending: list[tuple[list[int], float]] = []

        def flush() -> None:
            nonlocal best_members, best_jq, best_cost
            if not pending:
                return
            jqs = self.objective.batch_qualities(
                [qualities[members] for members, _ in pending]
            )
            for (members, cost), jq in zip(pending, jqs):
                jq = float(jq)
                if jq > best_jq + eps or (
                    abs(jq - best_jq) <= eps and cost < best_cost
                ):
                    best_jq = jq
                    best_cost = cost
                    best_members = members
            pending.clear()

        for members, cost in self._feasible_masks(pool, budget):
            pending.append((members, cost))
            if len(pending) >= _CHUNK:
                flush()
        flush()
        if best_members is None:
            return Jury(())
        return Jury(workers[i] for i in best_members)


def optimal_jq(
    pool: WorkerPool,
    budget: float,
    objective=None,
    max_pool: int = DEFAULT_MAX_POOL,
) -> float:
    """Convenience: the optimal objective value ``JQ(J*)`` for a pool.

    Used by the Figure 7(a)/Table 3 experiments to measure how far the
    annealing heuristic lands from the true optimum.
    """
    selector = ExhaustiveSelector(objective, max_pool=max_pool)
    return selector.select(pool, budget).jq
