"""MVJS — the Majority-Voting Jury Selection baseline of Cao et al. [7].

The paper's system comparison (Figures 6 and 10) pits OPTJS (jury
selection under BV) against MVJS, which solves
``argmax_J JQ(J, MV, 0.5)``.  Cao et al.'s original implementation is
not available; this module provides two engines that solve the same
optimization:

* ``engine="sa"`` (default) — the Algorithm-3 simulated annealer with
  the MV objective.  Using the *same* search heuristic for both systems
  isolates the contribution of the voting strategy, which is the
  comparison the paper is making.
* ``engine="size-enum"`` — a deterministic heuristic in the spirit of
  Cao et al.: for every odd jury size ``k`` take the ``k`` best-quality
  workers, repair budget violations by swapping the most expensive
  member for the best cheaper outsider, and keep the feasible candidate
  with the highest MV-JQ (computed by the Poisson-binomial oracle).
  Odd sizes suffice because MV-JQ with a flat prior never prefers an
  even jury: the tie mass is lost to the tie-to-1 rule.
"""

from __future__ import annotations

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR
from ..core.worker import WorkerPool
from ..voting.majority import MajorityVoting
from .annealing import AnnealingSelector
from .base import JQObjective, JurySelector


def mv_objective(
    alpha: float = UNINFORMATIVE_PRIOR, num_buckets: int = 50
) -> JQObjective:
    """The MVJS objective: ``JQ(J, MV, alpha)`` via the Poisson-binomial
    oracle."""
    return JQObjective(MajorityVoting(), alpha=alpha, num_buckets=num_buckets)


class MVJSSelector(JurySelector):
    """The Cao et al. baseline system."""

    name = "mvjs"

    def __init__(
        self,
        alpha: float = UNINFORMATIVE_PRIOR,
        engine: str = "sa",
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(mv_objective(alpha))
        if engine not in ("sa", "size-enum"):
            raise ValueError(f"unknown MVJS engine {engine!r}")
        self.engine = engine
        self._annealer = AnnealingSelector(self.objective, epsilon=epsilon)

    def _select(
        self, pool: WorkerPool, budget: float, rng: np.random.Generator
    ) -> Jury:
        if self.engine == "sa":
            return self._annealer._select(pool, budget, rng)
        return self._size_enumeration(pool, budget)

    # ------------------------------------------------------------------
    # Deterministic size-enumeration engine
    # ------------------------------------------------------------------
    def _size_enumeration(self, pool: WorkerPool, budget: float) -> Jury:
        ranked = list(pool.sorted_by_quality())
        eps = 1e-12
        best_jury = Jury(())
        best_jq = -np.inf
        for k in range(1, len(ranked) + 1, 2):  # odd sizes only
            candidate = self._repair(ranked, k, budget, eps)
            if candidate is None:
                continue
            jq = self.objective(candidate)
            if jq > best_jq + eps:
                best_jq = jq
                best_jury = candidate
        return best_jury

    @staticmethod
    def _repair(ranked, k: int, budget: float, eps: float) -> Jury | None:
        """Top-k by quality, then swap expensive members for cheaper
        outsiders (in quality order) until feasible; None if impossible."""
        if k > len(ranked):
            return None
        members = list(ranked[:k])
        outsiders = list(ranked[k:])
        cost = sum(w.cost for w in members)
        while cost > budget + eps:
            members.sort(key=lambda w: (-w.cost, w.quality))
            expensive = members[0]
            # Best-quality outsider strictly cheaper than the evictee.
            replacement = next(
                (w for w in outsiders if w.cost < expensive.cost - eps), None
            )
            if replacement is None:
                return None
            members[0] = replacement
            outsiders.remove(replacement)
            outsiders.append(expensive)
            cost += replacement.cost - expensive.cost
        return Jury(members)
