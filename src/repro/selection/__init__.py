"""Jury Selection Problem solvers (Section 5).

* :class:`AnnealingSelector` — the paper's simulated-annealing solver
  (Algorithms 3–4); the default engine behind OPTJS.
* :class:`ExhaustiveSelector` — optimal by enumeration, for small N.
* :class:`MVJSSelector` — the Cao et al. Majority-Voting baseline.
* :class:`GreedyQualitySelector` / :class:`GreedyRatioSelector` —
  cheap baselines for ablations.
* Special cases — closed forms licensed by the monotonicity lemmas.
* :func:`budget_quality_table` — the Figure-1 provider-facing table;
  :func:`frontier_budget_table` builds the exact table from one batched
  all-subsets kernel sweep.
"""

from .annealing import (
    DEFAULT_COOLING_DIVISOR,
    DEFAULT_EPSILON,
    DEFAULT_INITIAL_TEMPERATURE,
    AnnealingSelector,
    anneal_subset,
    anneal_subset_batched,
)
from .base import JQObjective, JurySelector, SelectionResult
from .budget_table import (
    BudgetQualityTable,
    BudgetTableRow,
    budget_quality_table,
    frontier_budget_table,
)
from .exhaustive import DEFAULT_MAX_POOL, ExhaustiveSelector, optimal_jq
from .greedy import GreedyQualitySelector, GreedyRatioSelector
from .mvjs import MVJSSelector, mv_objective
from .special_cases import (
    check_quality_monotonicity,
    check_size_monotonicity,
    select_all_if_unconstrained,
    select_top_k_uniform_cost,
)

__all__ = [
    "AnnealingSelector",
    "BudgetQualityTable",
    "BudgetTableRow",
    "DEFAULT_COOLING_DIVISOR",
    "DEFAULT_EPSILON",
    "DEFAULT_INITIAL_TEMPERATURE",
    "DEFAULT_MAX_POOL",
    "ExhaustiveSelector",
    "GreedyQualitySelector",
    "GreedyRatioSelector",
    "JQObjective",
    "JurySelector",
    "MVJSSelector",
    "SelectionResult",
    "anneal_subset",
    "anneal_subset_batched",
    "budget_quality_table",
    "check_quality_monotonicity",
    "check_size_monotonicity",
    "frontier_budget_table",
    "mv_objective",
    "optimal_jq",
    "select_all_if_unconstrained",
    "select_top_k_uniform_cost",
]
