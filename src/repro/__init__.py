"""repro — reproduction of "On Optimality of Jury Selection in
Crowdsourcing" (Zheng, Cheng, Maniu, Mo; EDBT 2015).

The library answers the paper's central question — *which workers
should a budget buy?* — with the paper's answer: select the jury that
maximizes Jury Quality under Bayesian Voting, the provably optimal
voting strategy.

Quick start
-----------
>>> from repro import Worker, WorkerPool, OptimalJurySelectionSystem
>>> pool = WorkerPool(
...     [
...         Worker("A", 0.77, 9), Worker("B", 0.70, 5),
...         Worker("C", 0.80, 6), Worker("D", 0.65, 7),
...         Worker("E", 0.60, 5), Worker("F", 0.60, 2),
...         Worker("G", 0.75, 3),
...     ]
... )
>>> system = OptimalJurySelectionSystem(pool, seed=42)
>>> print(system.budget_quality_table([5, 10, 15, 20]).render())

Subpackages
-----------
``repro.core``
    Workers, juries, tasks, priors.
``repro.voting``
    The strategy zoo (MV, BV, RMV, RBV, WMV, ...).
``repro.quality``
    Exact and approximate Jury Quality (Algorithms 1–2, Theorem 3).
``repro.selection``
    JSP solvers (Algorithms 3–4, exhaustive, baselines).
``repro.multiclass``
    Section-7 extension: multi-choice tasks, confusion matrices.
``repro.estimation``
    Worker-quality estimation (empirical, one-coin EM, Dawid–Skene).
``repro.simulation``
    Synthetic pools (Section 6.1.1) and the simulated AMT platform.
``repro.experiments``
    Drivers that regenerate every table and figure of Section 6.
``repro.engine``
    Event-driven, capacity-aware campaign serving behind the
    ``Campaign`` facade: resumable lifecycle, unified
    ``CampaignConfig``, pluggable persistent state backends, worker
    registry, shared JQ caches, budget-paced scheduler, metrics.
"""

from .core import (
    DecisionTask,
    Jury,
    MultiChoiceTask,
    ReproError,
    Voting,
    Worker,
    WorkerPool,
)
from .quality import (
    estimate_jq,
    exact_jq,
    exact_jq_bv,
    exact_jq_mv,
    jury_quality,
)
from .selection import (
    AnnealingSelector,
    ExhaustiveSelector,
    JQObjective,
    MVJSSelector,
    SelectionResult,
    budget_quality_table,
)
from .engine import (
    Campaign,
    CampaignConfig,
    CampaignEngine,
    EngineConfig,
    EngineMetrics,
    EngineTask,
    JQCache,
    MemoryBackend,
    SQLiteBackend,
    StateBackend,
    WorkerRegistry,
)
from .frontier import Frontier, FrontierPoint, exact_frontier, sampled_frontier
from .online import OnlineDecisionSession, OnlineOutcome, run_online
from .portfolio import CampaignPlan, allocate_budget, plan_campaign
from .system import OptimalJurySelectionSystem, Verdict
from .voting import (
    BayesianVoting,
    MajorityVoting,
    VotingStrategy,
    make_strategy,
)

__version__ = "1.0.0"

__all__ = [
    "AnnealingSelector",
    "BayesianVoting",
    "Campaign",
    "CampaignConfig",
    "CampaignEngine",
    "CampaignPlan",
    "DecisionTask",
    "EngineConfig",
    "EngineMetrics",
    "EngineTask",
    "ExhaustiveSelector",
    "Frontier",
    "FrontierPoint",
    "JQCache",
    "JQObjective",
    "Jury",
    "MVJSSelector",
    "MajorityVoting",
    "MemoryBackend",
    "MultiChoiceTask",
    "OnlineDecisionSession",
    "OnlineOutcome",
    "OptimalJurySelectionSystem",
    "ReproError",
    "SQLiteBackend",
    "SelectionResult",
    "StateBackend",
    "Verdict",
    "Voting",
    "VotingStrategy",
    "Worker",
    "WorkerPool",
    "WorkerRegistry",
    "__version__",
    "allocate_budget",
    "budget_quality_table",
    "estimate_jq",
    "exact_frontier",
    "exact_jq",
    "exact_jq_bv",
    "exact_jq_mv",
    "jury_quality",
    "make_strategy",
    "plan_campaign",
    "run_online",
    "sampled_frontier",
]
