"""Process-pool shard dispatch vs the threaded executor.

The acceptance scenario for the multi-process campaign pools work: a
**churn-heavy** 4-shard campaign — scalar (pure-Python, GIL-bound) JQ
kernels, exact cache keying (``quantization=None``, so drifting quality
estimates force real recomputes instead of bucket hits), a frontier
pool at the enumeration cap, and periodic EM re-estimation churning
the cached qualities — where admission rounds dominate wall-clock.

On that workload the threaded executor cannot overlap the shard
admits (the scalar kernel holds the GIL), while the process pool runs
them on four independent interpreters: ``dispatch="processes"`` is
the same byte-identical campaign, minus the GIL.

Three configurations on identical seeded traffic:

* sequential — 4 shards, admits dispatched inline;
* threads — 4 shards on a 4-worker thread pool (PR 5's executor);
* processes — 4 shards on persistent shard worker processes.

The fingerprint triple-identity is asserted unconditionally.  The
throughput bar (processes >= 1.5x threads) is enforced when the host
has enough cores for the claim to be physically possible — on a
single-core container every dispatch strategy collapses to the same
wall-clock and the numbers are recorded without the gate (the CI
``procpool`` job runs on multi-core runners, where the gate is live).
"""

import os
import time

import numpy as np

from repro.engine import Campaign, CampaignConfig, EngineTask
from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.simulation import SyntheticPoolConfig, generate_pool

POOL_SIZE = 64
NUM_SHARDS = 4
CAPACITY = 8
BATCH_SIZE = 50
NUM_TASKS = 300
BUDGET_PER_TASK = 0.25
SEED = 2015
#: Acceptance bar from the issue: process dispatch must clear at least
#: this multiple of the threaded executor's throughput on the
#: churn-heavy campaign.  Only enforceable with real parallel hardware.
MIN_SPEEDUP = 1.5
#: Cores needed before the bar is enforced: 4 shard workers + the
#: parent loop cannot express a 1.5x win on fewer.
MIN_CORES_FOR_GATE = 4


def _pool_and_tasks():
    rng = np.random.default_rng(SEED)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=POOL_SIZE, quality_ceiling=0.95), rng
    )
    truths = rng.integers(0, 2, size=NUM_TASKS)
    tasks = [
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    ]
    return pool, tasks


def run_config(dispatch: str, parallel_shards: int = 0):
    pool, tasks = _pool_and_tasks()
    campaign = Campaign.open(
        pool,
        CampaignConfig(
            budget=BUDGET_PER_TASK * NUM_TASKS,
            capacity=CAPACITY,
            batch_size=BATCH_SIZE,
            confidence_target=0.95,
            expected_tasks=NUM_TASKS,
            seed=SEED,
            num_shards=NUM_SHARDS,
            dispatch=dispatch,
            parallel_shards=parallel_shards,
            # The churn levers: pure-Python JQ (GIL-bound), exact cache
            # keys (quality drift defeats memoization), the frontier
            # enumeration cap, and frequent EM re-estimation.
            jq_kernel="scalar",
            quantization=None,
            frontier_pool_size=12,
            reestimate_every=10,
        ),
    )
    campaign.submit(tasks)
    start = time.perf_counter()
    metrics = campaign.run()
    elapsed = time.perf_counter() - start
    assert metrics.completed == NUM_TASKS
    assert metrics.peak_worker_load <= CAPACITY
    assert metrics.total_spend <= campaign.config.budget + 1e-6
    fingerprint = metrics.fingerprint()
    campaign.close()
    return NUM_TASKS / elapsed, fingerprint, metrics


def test_process_pool_vs_threaded_dispatch(benchmark, emit, emit_json):
    def sweep():
        sequential = run_config("threads", parallel_shards=0)
        threaded = run_config("threads", parallel_shards=NUM_SHARDS)
        processes = run_config("processes")
        return sequential, threaded, processes

    sequential, threaded, processes = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    seq_tps, seq_fp, _ = sequential
    thr_tps, thr_fp, _ = threaded
    proc_tps, proc_fp, proc_metrics = processes

    # The tentpole invariant, at benchmark scale: dispatch strategy is
    # invisible in the decisions.
    assert seq_fp == thr_fp == proc_fp

    cores = os.cpu_count() or 1
    speedup = proc_tps / thr_tps
    gated = cores >= MIN_CORES_FOR_GATE

    result = ExperimentResult(
        experiment_id="engine-process-pool",
        title=(
            f"Process-pool vs threaded shard dispatch on a churn-heavy "
            f"campaign ({POOL_SIZE} workers, {NUM_SHARDS} shards, scalar "
            f"JQ kernel, exact cache keys, {NUM_TASKS} tasks)"
        ),
        x_label=(
            "configuration (0=sequential, 1=threads, 2=processes)"
        ),
        xs=(0.0, 1.0, 2.0),
        series=(
            SweepSeries("tasks/sec", (seq_tps, thr_tps, proc_tps)),
        ),
        notes=(
            f"processes/threads speedup {speedup:.2f}x (bar >= "
            f"{MIN_SPEEDUP}x, enforced on >= {MIN_CORES_FOR_GATE} cores; "
            f"this host has {cores}); fingerprints byte-identical across "
            "all three dispatch strategies"
        ),
    )
    emit(result.render())
    emit_json(
        "engine-process-pool",
        {
            "sequential_tasks_per_sec": seq_tps,
            "threaded_tasks_per_sec": thr_tps,
            "process_tasks_per_sec": proc_tps,
            "speedup_vs_threads": speedup,
            "speedup_bar": MIN_SPEEDUP,
            "bar_enforced": gated,
            "host_cores": cores,
            "shards": NUM_SHARDS,
            "tasks": NUM_TASKS,
            "fingerprint_identical": True,
            "votes_cast": proc_metrics.votes_cast,
        },
    )
    if gated:
        assert speedup >= MIN_SPEEDUP, (
            f"process dispatch managed only {speedup:.2f}x the threaded "
            f"executor on {cores} cores (bar: {MIN_SPEEDUP}x)"
        )
