"""Async ingestion + parallel shard dispatch vs the sequential loop.

The acceptance scenario for PR 5's concurrency work: a 64-worker,
4-shard campaign under **burst ingestion** — producer threads dumping
bursts of tasks into the live intake while juries are being seated —
served by the async intake loop with shard admits dispatched on a
thread pool, measured against the classic sequential configuration
(single scheduler, pre-loaded synchronous event loop) on identical
seeded traffic.

Two effects stack: sharding divides the admission-round work by K
(the structural win ``bench_engine_sharding.py`` measures), and the
thread-pool dispatch overlaps the shards' frontier builds (numpy
kernels that release the GIL).  The acceptance bar is **>= 2x** the
sequential loop's tasks/sec; the run also re-asserts the serving
invariants at benchmark scale and checks the async intake actually
carried the traffic (every task flowed through the bounded queue).

The deterministic pins (async == sync fingerprints, parallel ==
sequential dispatch) live in ``tests/engine/test_invariants.py``; this
file is about wall-clock.
"""

import threading

import numpy as np

from repro.engine import Campaign, CampaignConfig, EngineTask
from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.simulation import SyntheticPoolConfig, generate_pool

POOL_SIZE = 64
NUM_SHARDS = 4
CAPACITY = 8
BATCH_SIZE = 200  # burst ingestion: arrivals buffered into large batches
NUM_TASKS = 3_000
BUDGET_PER_TASK = 0.25
SEED = 2015
PRODUCERS = 4
BURST = 50  # tasks per producer submit() call
#: Acceptance bar from the issue: async + parallel shards must clear at
#: least this multiple of the sequential loop's burst throughput.
MIN_SPEEDUP = 2.0


def _pool_and_tasks():
    rng = np.random.default_rng(SEED)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=POOL_SIZE, quality_ceiling=0.95), rng
    )
    truths = rng.integers(0, 2, size=NUM_TASKS)
    tasks = [
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    ]
    return pool, tasks


def _config(**overrides):
    return CampaignConfig(
        budget=BUDGET_PER_TASK * NUM_TASKS,
        capacity=CAPACITY,
        batch_size=BATCH_SIZE,
        confidence_target=0.95,
        expected_tasks=NUM_TASKS,
        seed=SEED,
        **overrides,
    )


def run_sequential():
    """The baseline: single scheduler, synchronous pre-loaded loop."""
    pool, tasks = _pool_and_tasks()
    campaign = Campaign.open(pool, _config(num_shards=1))
    campaign.submit(tasks)
    metrics = campaign.run()
    assert metrics.completed == NUM_TASKS
    assert metrics.peak_worker_load <= CAPACITY
    assert metrics.total_spend <= campaign.config.budget + 1e-6
    return metrics


def run_async_parallel():
    """Async intake fed by bursting producer threads, 4 shards, admits
    dispatched on a 4-worker thread pool."""
    pool, tasks = _pool_and_tasks()
    campaign = Campaign.open(
        pool,
        _config(
            num_shards=NUM_SHARDS,
            ingestion="async",
            parallel_shards=NUM_SHARDS,
            ingest_grace=2.0,
        ),
    )
    chunks = [tasks[j::PRODUCERS] for j in range(PRODUCERS)]

    def producer(chunk):
        for burst_start in range(0, len(chunk), BURST):
            campaign.submit(
                chunk[burst_start : burst_start + BURST],
                start_time=float(burst_start),
            )

    producers = [
        threading.Thread(target=producer, args=(chunk,)) for chunk in chunks
    ]

    def closer():
        for thread in producers:
            thread.join()
        campaign.close_intake()

    closer_thread = threading.Thread(target=closer)
    for thread in producers:
        thread.start()
    closer_thread.start()
    metrics = campaign.run()
    closer_thread.join(timeout=30.0)
    assert not closer_thread.is_alive()

    assert metrics.completed == NUM_TASKS
    assert metrics.peak_worker_load <= CAPACITY
    assert metrics.total_spend <= campaign.config.budget + 1e-6
    # All traffic rode the bounded queue.
    assert campaign.intake_stats.submitted == NUM_TASKS
    campaign.close()
    return metrics


def test_async_parallel_vs_sequential_throughput(benchmark, emit, emit_json):
    def sweep():
        sequential = run_sequential()
        concurrent = run_async_parallel()
        return sequential, concurrent

    sequential, concurrent = benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedup = concurrent.throughput / sequential.throughput
    result = ExperimentResult(
        experiment_id="engine-async-ingestion",
        title=(
            f"Async intake + {NUM_SHARDS}-way parallel shard dispatch vs "
            f"the sequential loop ({POOL_SIZE} workers, {PRODUCERS} "
            f"producer threads bursting {BURST}, {NUM_TASKS} tasks)"
        ),
        x_label="configuration (0=sequential, 1=async+parallel)",
        xs=(0.0, 1.0),
        series=(
            SweepSeries(
                "tasks/sec",
                (sequential.throughput, concurrent.throughput),
            ),
            SweepSeries(
                "realized accuracy",
                (
                    sequential.realized_accuracy,
                    concurrent.realized_accuracy,
                ),
            ),
            SweepSeries(
                "net spend",
                (sequential.total_spend, concurrent.total_spend),
            ),
        ),
        notes=(
            f"speedup {speedup:.2f}x (acceptance bar >= {MIN_SPEEDUP}x); "
            "identical seeded traffic; capacity/budget invariants asserted; "
            "all async traffic flowed through the bounded intake"
        ),
    )
    emit(result.render())
    emit_json(
        "engine-async-ingestion",
        {
            "shards": NUM_SHARDS,
            "parallel_shards": NUM_SHARDS,
            "producer_threads": PRODUCERS,
            "burst_size": BURST,
            "tasks": NUM_TASKS,
            "sequential_tasks_per_sec": sequential.throughput,
            "async_parallel_tasks_per_sec": concurrent.throughput,
            "speedup": speedup,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"async+parallel engine only {speedup:.2f}x the sequential loop "
        f"({concurrent.throughput:,.0f} vs "
        f"{sequential.throughput:,.0f} tasks/s)"
    )
    # 4x the engaged candidate pool must not cost accuracy.
    assert (
        concurrent.realized_accuracy
        >= sequential.realized_accuracy - 0.02
    )
