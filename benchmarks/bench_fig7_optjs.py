"""Figure 7: annealer quality (vs exhaustive optimum) and scaling.

Paper shape: 7(a) the two curves nearly coincide; 7(b) wall-clock grows
roughly linearly with the pool size N.
"""

from repro.experiments import run_fig7a, run_fig7b


def test_fig7a_sa_vs_optimal(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig7a(reps=4, seed=0), rounds=1, iterations=1
    )
    emit(result.render())
    optimal = result.series_by_name("JQ(J*)").values
    annealed = result.series_by_name("JQ(J-hat)").values
    for o, a in zip(optimal, annealed):
        assert o >= a - 1e-9
        assert o - a < 0.05


def test_fig7b_annealer_scaling(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig7b(pool_sizes=(50, 100, 150, 200), seed=0, epsilon=1e-6),
        rounds=1,
        iterations=1,
    )
    emit(result.render(6))
    for series in result.series:
        assert all(t > 0 for t in series.values)
        # Roughly linear: 4x the pool should cost well under 16x time.
        assert series.values[-1] < 40 * series.values[0] + 1.0
