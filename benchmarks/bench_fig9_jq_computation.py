"""Figure 9: the bucket JQ estimator (accuracy and pruning speedup).

Paper shape: 9(a) higher quality variance helps at mu = 0.5; 9(b)
error collapses as numBuckets grows; 9(c) the error histogram at
numBuckets = 50 is heavily skewed to ~0 (max within 0.01%); 9(d)
pruning roughly halves the map-based estimator's runtime.
"""

from repro.experiments import run_fig9a, run_fig9b, run_fig9c, run_fig9d


def test_fig9a_variance_effect(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig9a(reps=10, seed=0), rounds=1, iterations=1
    )
    emit(result.render())
    at_half = {s.name: s.values[0] for s in result.series}
    assert at_half["var=0.1"] > at_half["var=0.01"]


def test_fig9b_error_vs_buckets(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig9b(reps=30, seed=0), rounds=1, iterations=1
    )
    emit(result.render(7))
    errors = result.series[0].values
    assert errors[-1] <= errors[0] + 1e-12
    assert errors[-1] < 1e-4


def test_fig9c_error_histogram(benchmark, emit):
    hist = benchmark.pedantic(
        lambda: run_fig9c(reps=100, seed=0), rounds=1, iterations=1
    )
    emit(hist.render())
    # Paper: maximal error within 0.01% at numBuckets=50.
    assert hist.counts[-1] == 0


def test_fig9d_pruning_speedup(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig9d(sizes=(50, 100, 150, 200), seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render(6))
    with_p = result.series_by_name("with pruning (s)").values
    without_p = result.series_by_name("without pruning (s)").values
    # Pruning must help on the larger juries (paper: >2x at n=500).
    assert with_p[-1] < without_p[-1]
