"""Figure 1: regenerate the budget-quality table of the running example.

Expected (paper): budgets 5/10/15/20 -> JQ 75% / 80% / 84.5% / 86.95%.
The benchmark times one full exhaustive budget-table construction.
"""

from repro.experiments import FIGURE1_EXPECTED_JQ, run_fig1


def test_fig1_budget_quality_table(benchmark, emit):
    table = benchmark(run_fig1)
    emit("== fig1: Budget-quality table (workers A-G) ==\n" + table.render())
    jqs = [row.jq for row in table.rows]
    for got, expected in zip(jqs, FIGURE1_EXPECTED_JQ):
        assert abs(got - expected) < 1e-9
