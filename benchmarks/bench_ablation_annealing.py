"""Ablation A2: annealer schedule sensitivity.

How do the cooling floor (epsilon), the cooling divisor and restarts
trade solution quality against JQ evaluations?  The paper fixes
epsilon = 1e-8 and divisor 2; this ablation shows how much of that
budget is actually needed on 11-worker pools where the optimum is
known exactly.
"""

import numpy as np
import pytest

from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.selection import (
    AnnealingSelector,
    ExhaustiveSelector,
    JQObjective,
)
from repro.simulation import SyntheticPoolConfig, generate_pool

POOLS = 8
BUDGET = 0.3


@pytest.fixture(scope="module")
def pools():
    rngs = [np.random.default_rng(s) for s in range(POOLS)]
    return [
        generate_pool(SyntheticPoolConfig(num_workers=11), rng)
        for rng in rngs
    ]


@pytest.fixture(scope="module")
def optima(pools):
    selector = ExhaustiveSelector(JQObjective())
    return [selector.select(pool, BUDGET).jq for pool in pools]


def _mean_gap_and_evals(pools, optima, **annealer_kwargs):
    gaps, evals = [], []
    for i, (pool, opt) in enumerate(zip(pools, optima)):
        selector = AnnealingSelector(JQObjective(), **annealer_kwargs)
        result = selector.select(pool, BUDGET, rng=np.random.default_rng(i))
        gaps.append(max(opt - result.jq, 0.0))
        evals.append(result.evaluations)
    return float(np.mean(gaps)), float(np.mean(evals))


def test_epsilon_sensitivity(benchmark, emit, pools, optima):
    epsilons = (1e-2, 1e-4, 1e-6, 1e-8)

    def sweep():
        gaps, evals = [], []
        for eps in epsilons:
            gap, ev = _mean_gap_and_evals(pools, optima, epsilon=eps)
            gaps.append(gap)
            evals.append(ev)
        return ExperimentResult(
            experiment_id="ablation-sa-epsilon",
            title="SA cooling floor: optimality gap vs JQ evaluations",
            x_label="epsilon",
            xs=tuple(epsilons),
            series=(
                SweepSeries("mean gap", tuple(gaps)),
                SweepSeries("mean evals", tuple(evals)),
            ),
            notes=f"{POOLS} pools, N=11, B={BUDGET}",
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(result.render(5))
    gaps = result.series_by_name("mean gap").values
    evals = result.series_by_name("mean evals").values
    assert evals[-1] > evals[0]  # colder floor costs more work
    assert gaps[-1] <= gaps[0] + 1e-9  # and does not hurt quality


def test_restart_sensitivity(benchmark, emit, pools, optima):
    restart_counts = (1, 2, 4)

    def sweep():
        gaps, evals = [], []
        for r in restart_counts:
            gap, ev = _mean_gap_and_evals(pools, optima, restarts=r)
            gaps.append(gap)
            evals.append(ev)
        return ExperimentResult(
            experiment_id="ablation-sa-restarts",
            title="SA restarts: optimality gap vs JQ evaluations",
            x_label="restarts",
            xs=tuple(float(r) for r in restart_counts),
            series=(
                SweepSeries("mean gap", tuple(gaps)),
                SweepSeries("mean evals", tuple(evals)),
            ),
            notes=f"{POOLS} pools, N=11, B={BUDGET}",
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(result.render(5))
    gaps = result.series_by_name("mean gap").values
    assert gaps[-1] <= gaps[0] + 1e-9  # restarts never hurt
