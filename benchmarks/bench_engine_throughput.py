"""Engine throughput: tasks/sec and JQ-cache effectiveness under load.

Drives seeded simulated campaigns of 1k and 10k tasks through the
campaign engine and reports

* **throughput** (completed tasks per wall-clock second),
* **JQ-cache hit rate** — heavy traffic re-evaluates near-identical
  juries constantly; the campaign-wide cache should serve well over
  half of all JQ lookups (the acceptance bar is > 50%), and
* the serving invariants: per-worker concurrent load never exceeds
  capacity and net spend never exceeds the campaign budget.

A third run repeats the 1k campaign with the cache's quantization
disabled and memoization effectively off (cleared each batch is not
possible from outside, so it uses exact keys — still a cache, but the
cold/warm split below quantifies the speedup of the warm path).
"""

import numpy as np

from repro.engine import Campaign, CampaignConfig, EngineTask
from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.simulation import SyntheticPoolConfig, generate_pool

POOL_SIZE = 60
CAPACITY = 6
SEED = 2015
TASK_COUNTS = (1_000, 10_000)
BUDGET_PER_TASK = 0.35


def run_campaign(
    num_tasks: int,
    quantization: int | None = 200,
    reestimate_every: int = 0,
    **config_overrides,
):
    rng = np.random.default_rng(SEED)
    # Cap qualities below 1: the clipped Gaussian otherwise mints
    # perfect workers and the whole campaign trivially scores 100%.
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=POOL_SIZE, quality_ceiling=0.95), rng
    )
    budget = BUDGET_PER_TASK * num_tasks
    config = CampaignConfig(
        budget=budget,
        capacity=CAPACITY,
        batch_size=25,
        confidence_target=0.95,
        quantization=quantization,
        reestimate_every=reestimate_every,
        seed=SEED,
        **config_overrides,
    )
    campaign = Campaign.open(pool, config)
    truths = rng.integers(0, 2, size=num_tasks)
    campaign.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    metrics = campaign.run()
    return campaign, metrics, budget


def test_engine_throughput(benchmark, emit, emit_json):
    def sweep():
        throughputs, hit_rates, accuracies = [], [], []
        for num_tasks in TASK_COUNTS:
            engine, metrics, budget = run_campaign(num_tasks)

            # Serving invariants (the acceptance criteria of the
            # engine PR), checked at benchmark scale:
            assert metrics.completed == num_tasks
            assert metrics.peak_worker_load <= CAPACITY
            assert metrics.total_spend <= budget + 1e-6

            throughputs.append(metrics.throughput)
            hit_rates.append(metrics.cache_stats.hit_rate)
            accuracies.append(metrics.realized_accuracy)
        return ExperimentResult(
            experiment_id="engine-throughput",
            title=(
                f"Campaign engine throughput "
                f"({POOL_SIZE} workers, capacity {CAPACITY}, "
                f"budget {BUDGET_PER_TASK:g}/task)"
            ),
            x_label="simulated tasks",
            xs=tuple(float(n) for n in TASK_COUNTS),
            series=(
                SweepSeries("tasks/sec", tuple(throughputs)),
                SweepSeries("JQ-cache hit rate", tuple(hit_rates)),
                SweepSeries("realized accuracy", tuple(accuracies)),
            ),
            notes="seeded end-to-end runs; invariants "
            "(capacity, budget) asserted in-benchmark",
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(result.render())
    emit_json(
        "engine-throughput",
        {
            "task_counts": list(TASK_COUNTS),
            "tasks_per_sec": list(result.series_by_name("tasks/sec").values),
            "cache_hit_rates": list(
                result.series_by_name("JQ-cache hit rate").values
            ),
        },
    )

    hit_rates = result.series_by_name("JQ-cache hit rate").values
    assert all(rate > 0.5 for rate in hit_rates), hit_rates


def test_engine_cache_speedup(benchmark, emit, emit_json):
    """Quantized vs exact cache keys on a 1k-task campaign with
    quality re-estimation on — drifting estimates perturb every jury's
    quality vector, which is exactly when grid keys keep hitting while
    exact keys churn."""

    def sweep():
        rows = []
        for label, quantization in (("exact keys", None), ("grid-200", 200)):
            _, metrics, _ = run_campaign(
                1_000, quantization=quantization, reestimate_every=100
            )
            rows.append((label, metrics.throughput,
                         metrics.cache_stats.hit_rate))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_json(
        "engine-cache-keying",
        {
            label: {"tasks_per_sec": throughput, "cache_hit_rate": rate}
            for label, throughput, rate in rows
        },
    )
    lines = ["Engine cache keying: throughput and hit rate (1k tasks, "
             "re-estimation every 100 tasks)"]
    for label, throughput, hit_rate in rows:
        lines.append(
            f"  {label:>10}: {throughput:8,.0f} tasks/s, "
            f"hit rate {hit_rate:.1%}"
        )
    emit("\n".join(lines))
    # Drift perturbs every quality vector, so exact keys churn while
    # grid keys keep absorbing near-identical juries.  (No absolute
    # bar here: under grid keys the scheduler's quality-snapped
    # frontier memo skips repeated enumerations outright, so their
    # would-be cache hits never even reach the JQ cache — the >50%
    # acceptance bar lives in test_engine_throughput, whose campaigns
    # exercise the cache across churning candidate pools.)
    exact_rate = rows[0][2]
    grid_rate = rows[1][2]
    assert grid_rate > exact_rate, rows
