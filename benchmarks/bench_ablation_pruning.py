"""Ablation A1: what Algorithm-2 pruning actually buys.

Beyond the Figure-9(d) wall-clock view, this ablation counts the
dynamic program's *expansions* (the work unit pruning eliminates) as
the bucket resolution grows, and contrasts both map variants with the
vectorized dense implementation.
"""

import numpy as np
import pytest

from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.quality import estimate_jq, estimate_jq_detailed

BUCKET_COUNTS = (25, 50, 100, 200)
JURY_SIZE = 80


@pytest.fixture(scope="module")
def qualities():
    rng = np.random.default_rng(0)
    return np.clip(rng.normal(0.7, np.sqrt(0.05), JURY_SIZE), 0.0, 0.95)


def test_pruning_expansion_savings(benchmark, emit, qualities):
    def sweep():
        pruned_counts, unpruned_counts, saved = [], [], []
        for buckets in BUCKET_COUNTS:
            with_p = estimate_jq_detailed(
                qualities, num_buckets=buckets, pruning=True
            )
            without_p = estimate_jq_detailed(
                qualities, num_buckets=buckets, pruning=False
            )
            assert abs(with_p.jq - without_p.jq) < 1e-9
            pruned_counts.append(with_p.expansions)
            unpruned_counts.append(without_p.expansions)
            saved.append(1.0 - with_p.expansions / without_p.expansions)
        return ExperimentResult(
            experiment_id="ablation-pruning",
            title=f"DP expansions with/without pruning (n={JURY_SIZE})",
            x_label="numBuckets",
            xs=tuple(float(b) for b in BUCKET_COUNTS),
            series=(
                SweepSeries("expansions (pruned)", tuple(pruned_counts)),
                SweepSeries("expansions (full)", tuple(unpruned_counts)),
                SweepSeries("fraction saved", tuple(saved)),
            ),
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(result.render())
    saved = result.series_by_name("fraction saved").values
    assert all(s > 0.2 for s in saved)  # pruning saves real work


def test_dense_vs_map_speed(benchmark, emit, qualities):
    """The dense rewrite is the production path; quantify its edge."""
    import time

    def measure():
        start = time.perf_counter()
        dense = estimate_jq(qualities, num_buckets=50)
        dense_time = time.perf_counter() - start
        start = time.perf_counter()
        mapped = estimate_jq(qualities, num_buckets=50, implementation="map")
        map_time = time.perf_counter() - start
        assert abs(dense - mapped) < 1e-9
        return dense_time, map_time

    dense_time, map_time = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "== ablation-dense: dense vs map implementation "
        f"(n={JURY_SIZE}, numBuckets=50) ==\n"
        f"dense: {dense_time * 1e3:.2f} ms   map: {map_time * 1e3:.2f} ms   "
        f"speedup: {map_time / dense_time:.1f}x"
    )
    assert dense_time < map_time
