"""Batched JQ kernels: exact-frontier construction and engine serving
under re-estimation churn.

Two measurements, both against the scalar paths kept in-tree as
regression oracles:

* **Frontier construction** — ``exact_frontier`` over a 10-worker
  candidate pool (the engine scheduler's default ``frontier_pool_size``)
  via the all-subsets lattice kernel vs the historical one-jury-at-a-
  time loop.  Identical frontiers are asserted point for point; the
  acceptance bar is a >= 5x build-time speedup.
* **Engine throughput under re-estimation** — a 1k-task campaign
  re-fitting worker qualities every 100 completions, the workload whose
  quality drift invalidates the scheduler's frontier memos constantly
  (the ``results.txt`` cache-keying table measured it at 244-323
  tasks/s pre-kernel).  The batch and scalar runs must produce
  byte-identical fingerprints; the batch run must be faster.
"""

import time

import numpy as np

from repro.engine import Campaign, CampaignConfig, EngineTask
from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.frontier import exact_frontier
from repro.selection import JQObjective
from repro.simulation import SyntheticPoolConfig, generate_pool

SEED = 2015
FRONTIER_POOL = 10
FRONTIER_ROUNDS = 5
#: Acceptance bar from the issue: the kernel frontier build must be at
#: least this much faster than the scalar build at n = 10.
MIN_FRONTIER_SPEEDUP = 5.0

ENGINE_POOL = 60
ENGINE_TASKS = 1_000
REESTIMATE_EVERY = 100
BUDGET_PER_TASK = 0.35
#: Campaign repetitions per implementation; the throughput gate
#: compares best-of-N so one noisy-neighbor pause on a shared CI
#: runner cannot invert the comparison.
ENGINE_ROUNDS = 3
#: Hard gate for CI: the kernel engine must not fall meaningfully
#: behind the scalar engine.  The measured advantage (~1.3x) is
#: reported in the emitted table/JSON; the assert leaves timer-noise
#: headroom (same policy as bench_scheduler_substitution) so shared
#: runners cannot fail unrelated PRs.
MIN_ENGINE_SPEEDUP = 0.9


def _frontier_pool(num_workers: int):
    rng = np.random.default_rng(SEED)
    return generate_pool(
        SyntheticPoolConfig(num_workers=num_workers, quality_ceiling=0.95),
        rng,
    )


def _time_frontier(pool, implementation: str) -> tuple[float, object]:
    best = float("inf")
    frontier = None
    for _ in range(FRONTIER_ROUNDS):
        objective = JQObjective()  # fresh: no cross-run memo effects
        start = time.perf_counter()
        frontier = exact_frontier(pool, objective, implementation=implementation)
        best = min(best, time.perf_counter() - start)
    return best, frontier


def _run_engine(jq_kernel: str):
    rng = np.random.default_rng(SEED)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=ENGINE_POOL, quality_ceiling=0.95),
        rng,
    )
    budget = BUDGET_PER_TASK * ENGINE_TASKS
    campaign = Campaign.open(
        pool,
        CampaignConfig(
            budget=budget,
            capacity=6,
            batch_size=25,
            confidence_target=0.95,
            quantization=200,
            reestimate_every=REESTIMATE_EVERY,
            jq_kernel=jq_kernel,
            seed=SEED,
        ),
    )
    truths = rng.integers(0, 2, size=ENGINE_TASKS)
    campaign.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    metrics = campaign.run()
    assert metrics.completed == ENGINE_TASKS
    assert metrics.total_spend <= budget + 1e-6
    return metrics


def test_frontier_kernel_speedup(benchmark, emit, emit_json):
    pool = _frontier_pool(FRONTIER_POOL)

    def sweep():
        scalar_time, scalar_frontier = _time_frontier(pool, "scalar")
        batch_time, batch_frontier = _time_frontier(pool, "batch")
        return scalar_time, batch_time, scalar_frontier, batch_frontier

    scalar_time, batch_time, scalar_frontier, batch_frontier = (
        benchmark.pedantic(sweep, rounds=1, iterations=1)
    )

    # A performance lever, not a policy change: identical frontiers.
    assert batch_frontier.points == scalar_frontier.points

    speedup = scalar_time / batch_time
    result = ExperimentResult(
        experiment_id="frontier-kernel",
        title=(
            f"Exact frontier build: all-subsets kernel vs scalar loop "
            f"({FRONTIER_POOL}-worker pool, 2^{FRONTIER_POOL}-1 juries, "
            f"best of {FRONTIER_ROUNDS})"
        ),
        x_label="implementation (1=scalar, 2=batch kernel)",
        xs=(1.0, 2.0),
        series=(
            SweepSeries(
                "build seconds", (scalar_time, batch_time)
            ),
        ),
        notes=(
            f"kernel speedup {speedup:.1f}x; identical frontier points; "
            f"acceptance bar >= {MIN_FRONTIER_SPEEDUP:.0f}x"
        ),
    )
    emit(result.render())
    emit_json(
        "frontier-kernel",
        {
            "pool_size": FRONTIER_POOL,
            "scalar_build_seconds": scalar_time,
            "batch_build_seconds": batch_time,
            "speedup": speedup,
        },
    )
    assert speedup >= MIN_FRONTIER_SPEEDUP, (
        f"kernel frontier build only {speedup:.1f}x faster than scalar "
        f"({batch_time * 1e3:.1f}ms vs {scalar_time * 1e3:.1f}ms)"
    )


def test_engine_throughput_under_reestimation(benchmark, emit, emit_json):
    def sweep():
        # Interleave the runs and keep each side's best so shared-runner
        # noise hits both implementations alike.
        scalars = []
        batches = []
        for _ in range(ENGINE_ROUNDS):
            scalars.append(_run_engine("scalar"))
            batches.append(_run_engine("batch"))
        return scalars, batches

    scalars, batches = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Byte-identical campaigns: same seatings, same spend, same cache
    # counters — the kernel only changes how fast frontiers are built.
    # (Deterministic, unlike the timing gate below.)
    for scalar_run, batch_run in zip(scalars, batches):
        assert batch_run.fingerprint() == scalar_run.fingerprint()

    scalar = max(scalars, key=lambda m: m.throughput)
    batch = max(batches, key=lambda m: m.throughput)
    speedup = batch.throughput / scalar.throughput
    result = ExperimentResult(
        experiment_id="engine-reestimation-kernel",
        title=(
            f"Engine throughput under re-estimation every "
            f"{REESTIMATE_EVERY} tasks ({ENGINE_POOL} workers, "
            f"{ENGINE_TASKS} tasks, grid-200 cache keys)"
        ),
        x_label="implementation (1=scalar, 2=batch kernel)",
        xs=(1.0, 2.0),
        series=(
            SweepSeries(
                "tasks/sec", (scalar.throughput, batch.throughput)
            ),
            SweepSeries(
                "cache hit rate",
                (scalar.cache_stats.hit_rate, batch.cache_stats.hit_rate),
            ),
        ),
        notes=(
            f"kernel speedup {speedup:.2f}x (best of {ENGINE_ROUNDS} "
            f"per side); identical fingerprints; pre-kernel PR-3 runs "
            f"measured 244-323 tasks/s on this workload"
        ),
    )
    emit(result.render())
    emit_json(
        "engine-reestimation-kernel",
        {
            "tasks": ENGINE_TASKS,
            "reestimate_every": REESTIMATE_EVERY,
            "scalar_tasks_per_sec": scalar.throughput,
            "batch_tasks_per_sec": batch.throughput,
            "speedup": speedup,
            "cache_hit_rate": batch.cache_stats.hit_rate,
        },
    )
    assert speedup >= MIN_ENGINE_SPEEDUP, (
        f"batch kernel fell behind scalar under re-estimation: "
        f"{batch.throughput:,.0f} vs {scalar.throughput:,.0f} tasks/s"
    )
