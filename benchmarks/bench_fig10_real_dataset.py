"""Figure 10: the (simulated) AMT real-data evaluation.

Paper shape: 10(a)-(c) mirror the synthetic Figure 6 — OPTJS above
MVJS throughout; 10(d) the predicted-JQ and realized-accuracy curves
are highly similar and rise with the number of votes z.
"""

import pytest

from repro.experiments import (
    run_fig10a,
    run_fig10b,
    run_fig10c,
    run_fig10d,
    simulate_campaign,
)


@pytest.fixture(scope="module")
def campaign():
    return simulate_campaign(seed=2015)


def _assert_optjs_wins(result, slack=0.01):
    opt = result.series_by_name("OPTJS").values
    mv = result.series_by_name("MVJS").values
    assert all(o >= m - slack for o, m in zip(opt, mv)), result.render()


def test_fig10a_vary_budget(benchmark, emit, campaign):
    result = benchmark.pedantic(
        lambda: run_fig10a(campaign=campaign, num_questions=15, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    _assert_optjs_wins(result)


def test_fig10b_vary_pool_size(benchmark, emit, campaign):
    result = benchmark.pedantic(
        lambda: run_fig10b(campaign=campaign, num_questions=15, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    _assert_optjs_wins(result)


def test_fig10c_vary_cost_sd(benchmark, emit, campaign):
    result = benchmark.pedantic(
        lambda: run_fig10c(campaign=campaign, num_questions=15, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    _assert_optjs_wins(result)


def test_fig10d_jq_predicts_accuracy(benchmark, emit, campaign):
    result = benchmark.pedantic(
        lambda: run_fig10d(campaign=campaign, num_questions=200, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    predicted = result.series_by_name("Average JQ").values
    realized = result.series_by_name("Accuracy").values
    # The two curves track each other (paper: "highly similar").
    for p, r in zip(predicted, realized):
        assert abs(p - r) < 0.08
    # Both rise from z=3 to z=20.
    assert predicted[-1] > predicted[0]
    assert realized[-1] >= realized[0] - 0.02
