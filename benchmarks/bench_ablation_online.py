"""Ablation A5: online stopping versus fixed-jury spending.

An extension experiment beyond the paper: for juries of high-quality
workers, how much budget does the confidence-target stopping rule save
relative to consulting the entire fixed jury, and at what accuracy?
The sweep varies the confidence target; the fixed jury is the
reference at the right edge (target -> 1 consults everyone).
"""

import numpy as np
import pytest

from repro.core import Worker
from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.online import run_online

TARGETS = (0.8, 0.9, 0.95, 0.99)
JURY_SIZE = 9
WORKER_QUALITY = 0.8
TRIALS = 300


def test_online_stopping_savings(benchmark, emit):
    workers = [Worker(f"w{i}", WORKER_QUALITY, 1.0) for i in range(JURY_SIZE)]

    def sweep():
        rng = np.random.default_rng(0)
        votes_used, accuracy = [], []
        for target in TARGETS:
            used, correct = [], 0
            for _ in range(TRIALS):
                truth = int(rng.random() < 0.5)
                outcome = run_online(
                    workers,
                    lambda w: truth if rng.random() < w.quality else 1 - truth,
                    confidence_target=target,
                )
                used.append(outcome.votes_used)
                correct += int(outcome.answer == truth)
            votes_used.append(float(np.mean(used)))
            accuracy.append(correct / TRIALS)
        return ExperimentResult(
            experiment_id="ablation-online",
            title=(
                f"Online stopping: votes used and accuracy vs target "
                f"(jury of {JURY_SIZE} x q={WORKER_QUALITY})"
            ),
            x_label="confidence target",
            xs=tuple(TARGETS),
            series=(
                SweepSeries("mean votes used", tuple(votes_used)),
                SweepSeries("accuracy", tuple(accuracy)),
            ),
            notes=f"{TRIALS} trials per point, fixed jury would use "
            f"{JURY_SIZE} votes each",
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(result.render())
    votes = result.series_by_name("mean votes used").values
    accuracy = result.series_by_name("accuracy").values
    # Higher targets cost more votes and buy more accuracy.
    assert votes[-1] > votes[0]
    assert accuracy[-1] >= accuracy[0] - 0.02
    # Even the strictest target beats the fixed jury's spend.
    assert votes[-1] < JURY_SIZE
    # Accuracy respects the target (the posterior is calibrated).
    for target, acc in zip(TARGETS, accuracy):
        assert acc >= target - 0.05
