"""Table 3: distribution of the annealer's optimality gap.

Paper shape: the overwhelming majority of runs land in the [0, 0.01]
percentage-point bin; no run exceeds 3 points.
"""

from repro.experiments import run_table3


def test_table3_gap_distribution(benchmark, emit):
    hist = benchmark.pedantic(
        lambda: run_table3(reps=10, seed=0), rounds=1, iterations=1
    )
    emit(hist.render())
    assert hist.total == 60  # 6 budgets x 10 reps
    # Concentration near zero, tail negligible.  (The paper reports an
    # empty (3, inf) bin over 10,000 runs; our folded-cost pools create
    # a few harder swap landscapes, so we tolerate a <=5% tail —
    # EXPERIMENTS.md discusses the discrepancy.)
    assert hist.counts[0] >= hist.total * 0.6
    assert hist.counts[-1] <= hist.total * 0.05
