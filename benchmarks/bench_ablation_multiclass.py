"""Ablation A4: the Section-7 multiclass JQ machinery.

Exact multiclass JQ enumerates l^n votings; the tuple-key bucket
estimator is polynomial per label.  This ablation sweeps the label
count and checks both agreement and the cost trend, plus the
multiclass optimality claim (BV >= plurality) at each l.
"""

import time

import numpy as np
import pytest

from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.multiclass import (
    MultiClassWorker,
    PluralityVoting,
    estimate_jq_multiclass,
    exact_jq_multiclass,
)

LABEL_COUNTS = (2, 3, 4)
JURY_SIZE = 6


def test_multiclass_exact_vs_bucket(benchmark, emit):
    rng = np.random.default_rng(1)
    qualities = rng.uniform(0.5, 0.9, JURY_SIZE)

    def sweep():
        exact_vals, approx_vals, plurality_vals, times = [], [], [], []
        for labels in LABEL_COUNTS:
            workers = [
                MultiClassWorker.from_quality(f"w{i}", q, labels)
                for i, q in enumerate(qualities)
            ]
            exact_vals.append(exact_jq_multiclass(workers))
            start = time.perf_counter()
            approx_vals.append(
                estimate_jq_multiclass(workers, num_buckets=200)
            )
            times.append(time.perf_counter() - start)
            plurality_vals.append(
                exact_jq_multiclass(workers, strategy=PluralityVoting())
            )
        return ExperimentResult(
            experiment_id="ablation-multiclass",
            title=f"Multiclass JQ: exact vs bucket (n={JURY_SIZE})",
            x_label="labels",
            xs=tuple(float(l) for l in LABEL_COUNTS),
            series=(
                SweepSeries("exact BV", tuple(exact_vals)),
                SweepSeries("bucket BV", tuple(approx_vals)),
                SweepSeries("exact plurality", tuple(plurality_vals)),
                SweepSeries("bucket time (s)", tuple(times)),
            ),
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(result.render(5))
    exact_vals = result.series_by_name("exact BV").values
    approx_vals = result.series_by_name("bucket BV").values
    plurality_vals = result.series_by_name("exact plurality").values
    for e, a, p in zip(exact_vals, approx_vals, plurality_vals):
        assert abs(e - a) < 5e-3  # estimator tracks exact
        assert e >= p - 1e-9  # Section-7 optimality
