"""Streamed subset-lattice frontier past the dense 2^n ceiling.

The dense all-subsets kernel refuses pools past ``ALL_SUBSETS_MAX``
(= 14): it materializes the full 2^n jq array.  The streamed sweep
(`repro.quality.stream`) holds one popcount level at a time instead,
so ``exact_frontier`` now builds *exact* frontiers out to the
scheduler's ``MAX_FRONTIER_POOL`` (= 20) — six doublings past the old
ceiling — under a flat memory envelope.

This benchmark is the memory-envelope gate.  Each build runs in a
fresh subprocess so ``ru_maxrss`` measures that build alone, and the
peak RSS must stay under ``MEMORY_CEILING_MB`` — at n = 20 the dense
kernel's 2^20 x 20 member/bit intermediates would need multiple GB,
while the streamed sweep was measured at ~280 MB.  CI smokes n = 18
(~45 s); ``REPRO_STREAM_FULL=1`` adds the n = 20 build (~4 min) that
recorded the committed BENCH_engine.json numbers.
"""

import json
import os
import pathlib
import subprocess
import sys

import numpy as np

import repro
from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.selection import JQObjective

SEED = 2015
#: CI smoke size — past the dense bound, finishes in under a minute.
SMOKE_POOL = 18
#: Full size — the new ``MAX_FRONTIER_POOL`` ceiling, env-gated
#: (``REPRO_STREAM_FULL=1``) because the build takes ~4 minutes.
FULL_POOL = 20
#: Peak-RSS gate per build.  Measured: 214 MB at n = 18, 278 MB at
#: n = 20 — the ceiling leaves allocator/platform headroom while still
#: failing loudly if a regression reintroduces a 2^n-sized buffer
#: (the dense kernel's intermediates at n = 20 would blow well past it).
MEMORY_CEILING_MB = 1024

#: One frontier build, run in a child process so ``ru_maxrss`` (the
#: process-lifetime high-water mark) isolates this build from the
#: pytest parent and from sibling builds.
_CHILD = """
import json, resource, sys, time
import numpy as np
from repro.core import Worker, WorkerPool
from repro.frontier import exact_frontier
from repro.selection import JQObjective

n = int(sys.argv[1])
rng = np.random.default_rng(int(sys.argv[2]))
pool = WorkerPool(
    Worker(f"w{i}", float(0.55 + 0.44 * q), float(0.2 + 3.0 * c))
    for i, (q, c) in enumerate(zip(rng.random(n), rng.random(n)))
)
objective = JQObjective()
start = time.perf_counter()
frontier = exact_frontier(pool, objective, implementation="stream")
seconds = time.perf_counter() - start
jqs = [p.jq for p in frontier.points]
assert frontier.exact
assert jqs == sorted(jqs)
print(json.dumps({
    "seconds": seconds,
    "points": len(frontier.points),
    "evaluations": objective.evaluations,
    "maxrss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
}))
"""


def _measure(n: int) -> dict:
    src = pathlib.Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(n), str(SEED)],
        capture_output=True,
        text=True,
        env=env,
        timeout=900,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_streamed_frontier_memory_envelope(benchmark, emit, emit_json):
    sizes = [SMOKE_POOL]
    if os.environ.get("REPRO_STREAM_FULL") == "1":
        sizes.append(FULL_POOL)

    # The point of the streamed path: the dense lattice genuinely
    # refuses every size measured here, so these builds have no
    # materialize-everything fallback to lean on.
    for n in sizes:
        assert JQObjective().all_subsets(np.full(n, 0.7)) is None

    def sweep():
        return [_measure(n) for n in sizes]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for n, row in zip(sizes, rows):
        # Every subset scored exactly once, and a real frontier out.
        assert row["evaluations"] == 2**n - 1
        assert row["points"] >= 1

    result = ExperimentResult(
        experiment_id="streamed-frontier",
        title=(
            f"Streamed exact frontier past the dense 2^n bound "
            f"(seed {SEED}, peak-RSS gate {MEMORY_CEILING_MB} MB "
            f"per subprocess build)"
        ),
        x_label="pool size (workers)",
        xs=tuple(float(n) for n in sizes),
        series=(
            SweepSeries(
                "build seconds", tuple(r["seconds"] for r in rows)
            ),
            SweepSeries(
                "peak RSS (MB)", tuple(r["maxrss_mb"] for r in rows)
            ),
            SweepSeries(
                "frontier points", tuple(float(r["points"]) for r in rows)
            ),
        ),
        notes=(
            "dense kernel refuses every size shown (> ALL_SUBSETS_MAX); "
            "streamed sweep holds one popcount level at a time — memory "
            "stays flat while 2^n grows 64x from 14 to 20"
        ),
    )
    emit(result.render())
    emit_json(
        "streamed-frontier",
        {
            "pool_sizes": sizes,
            "build_seconds": [r["seconds"] for r in rows],
            "peak_rss_mb": [r["maxrss_mb"] for r in rows],
            "frontier_points": [r["points"] for r in rows],
            "memory_ceiling_mb": MEMORY_CEILING_MB,
        },
    )
    for n, row in zip(sizes, rows):
        assert row["maxrss_mb"] < MEMORY_CEILING_MB, (
            f"streamed frontier build at n={n} peaked at "
            f"{row['maxrss_mb']:.0f} MB — over the "
            f"{MEMORY_CEILING_MB} MB envelope; a 2^n-sized buffer "
            f"has probably crept back into the sweep"
        )
