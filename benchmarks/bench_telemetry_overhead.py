"""Telemetry overhead gate: the hub must be cheap enough to leave on.

Repeats the 1k-task campaign from :mod:`bench_engine_throughput` with
telemetry off (the :class:`NullTelemetry` default — instrumentation
sites cost an attribute lookup and an empty call) and on (the full hub:
counters, spans, histograms, event trace), takes the min wall time of
several rounds each, and gates the ratio:

* acceptance bar: telemetry **on** costs at most **10%** throughput
  against the NullTelemetry baseline;
* the measured overhead lands in ``BENCH_engine.json`` under
  ``telemetry-overhead`` so CI diffs catch creep.

Fingerprints are asserted byte-identical across the two modes while
we're here — the overhead run doubles as an observation-only check at
benchmark scale.
"""

import time

from bench_engine_throughput import run_campaign

NUM_TASKS = 1_000
ROUNDS = 7
MAX_OVERHEAD = 0.10


def _timed_run(telemetry: str) -> tuple[float, str]:
    start = time.perf_counter()
    _, metrics, _ = run_campaign(NUM_TASKS, telemetry=telemetry)
    elapsed = time.perf_counter() - start
    assert metrics.completed == NUM_TASKS
    return elapsed, metrics.fingerprint()


def test_telemetry_overhead(benchmark, emit, emit_json):
    def sweep():
        # One untimed warmup per mode, then *interleaved* timed rounds:
        # machine drift (CPU contention, cache warmth) hits both modes
        # equally instead of biasing whichever block ran second.
        _timed_run("off")
        _timed_run("on")
        off_wall = on_wall = float("inf")
        off_fp = on_fp = None
        for _ in range(ROUNDS):
            elapsed, off_fp = _timed_run("off")
            off_wall = min(off_wall, elapsed)
            elapsed, on_fp = _timed_run("on")
            on_wall = min(on_wall, elapsed)
        assert on_fp == off_fp, (
            "telemetry changed campaign decisions at benchmark scale"
        )
        return off_wall, on_wall

    off_wall, on_wall = benchmark.pedantic(sweep, rounds=1, iterations=1)
    overhead = on_wall / off_wall - 1.0
    emit(
        "Telemetry overhead (1k tasks, min of "
        f"{ROUNDS} rounds)\n"
        f"  telemetry off: {off_wall:.3f}s "
        f"({NUM_TASKS / off_wall:,.0f} tasks/s)\n"
        f"  telemetry on : {on_wall:.3f}s "
        f"({NUM_TASKS / on_wall:,.0f} tasks/s)\n"
        f"  overhead     : {overhead:+.1%} (bar: <= {MAX_OVERHEAD:.0%})"
    )
    emit_json(
        "telemetry-overhead",
        {
            "tasks": NUM_TASKS,
            "rounds": ROUNDS,
            "off_wall_seconds": off_wall,
            "on_wall_seconds": on_wall,
            "off_tasks_per_sec": NUM_TASKS / off_wall,
            "on_tasks_per_sec": NUM_TASKS / on_wall,
            "overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD,
        },
    )
    assert overhead <= MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} bar"
    )
