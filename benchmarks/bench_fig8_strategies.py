"""Figure 8: JQ of MV / BV / RBV / RMV.

Paper shape: BV dominates at every mu and every jury size; all
strategies dip at mu = 0.5 but BV stays high; RBV pins at 50%; RMV
tracks the mean quality and never beats MV for mu >= 0.5.
"""

from repro.experiments import run_fig8a, run_fig8b


def test_fig8a_vary_quality_mean(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig8a(reps=10, seed=0), rounds=1, iterations=1
    )
    emit(result.render())
    bv = result.series_by_name("BV").values
    for name in ("MV", "RBV", "RMV"):
        other = result.series_by_name(name).values
        assert all(b >= o - 1e-9 for b, o in zip(bv, other))
    assert result.series_by_name("RBV").values == tuple([0.5] * len(bv))


def test_fig8b_vary_jury_size(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig8b(reps=10, seed=0), rounds=1, iterations=1
    )
    emit(result.render())
    bv = result.series_by_name("BV").values
    mv = result.series_by_name("MV").values
    assert all(b >= m - 1e-9 for b, m in zip(bv, mv))
    # Both proper strategies improve from n=1 to n=11.
    assert bv[-1] > bv[0] - 1e-9
    assert mv[-1] > mv[0]
