"""Sharded vs. single-scheduler serving at 64 workers.

The single :class:`~repro.engine.scheduler.CampaignScheduler` does per
admission round work that scales with the whole pool and the whole
batch: the budget-split envelope walk is quadratic in batch size, and
every saturated seat triggers a substitute scan linear in pool size.
Sharding divides both by K — each shard admits its own sub-batch over
its own members — so under burst ingestion (large arrival batches
against a 64-worker pool) the sharded engine should clear **at least
2x the tasks/sec** of the single scheduler on identical traffic,
while every per-shard frontier stays inside the exact-frontier cap.

The run also re-asserts the serving invariants at benchmark scale
(capacity ceiling, net spend <= budget) and reports realized accuracy
for both configurations: sharding engages 4x the candidate workers, so
its accuracy must be no worse.
"""

import numpy as np

from repro.engine import Campaign, CampaignConfig, EngineTask
from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.simulation import SyntheticPoolConfig, generate_pool

POOL_SIZE = 64
NUM_SHARDS = 4
CAPACITY = 8
BATCH_SIZE = 200  # burst ingestion: arrivals buffered into large batches
NUM_TASKS = 3_000
BUDGET_PER_TASK = 0.25
SEED = 2015
MIN_SPEEDUP = 2.0


def run_campaign(num_shards: int):
    rng = np.random.default_rng(SEED)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=POOL_SIZE, quality_ceiling=0.95), rng
    )
    budget = BUDGET_PER_TASK * NUM_TASKS
    config = CampaignConfig(
        budget=budget,
        capacity=CAPACITY,
        batch_size=BATCH_SIZE,
        confidence_target=0.95,
        seed=SEED,
        num_shards=num_shards,
    )
    campaign = Campaign.open(pool, config)
    truths = rng.integers(0, 2, size=NUM_TASKS)
    campaign.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    metrics = campaign.run()

    assert metrics.completed == NUM_TASKS
    assert metrics.peak_worker_load <= CAPACITY
    assert metrics.total_spend <= budget + 1e-6
    return metrics


def test_sharded_vs_single_throughput(benchmark, emit, emit_json):
    def sweep():
        single = run_campaign(1)
        sharded = run_campaign(NUM_SHARDS)
        return single, sharded

    single, sharded = benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedup = sharded.throughput / single.throughput
    result = ExperimentResult(
        experiment_id="engine-sharding",
        title=(
            f"Sharded ({NUM_SHARDS} shards) vs single scheduler "
            f"({POOL_SIZE} workers, capacity {CAPACITY}, "
            f"burst batches of {BATCH_SIZE}, {NUM_TASKS} tasks)"
        ),
        x_label="shards",
        xs=(1.0, float(NUM_SHARDS)),
        series=(
            SweepSeries(
                "tasks/sec", (single.throughput, sharded.throughput)
            ),
            SweepSeries(
                "realized accuracy",
                (single.realized_accuracy, sharded.realized_accuracy),
            ),
            SweepSeries(
                "net spend", (single.total_spend, sharded.total_spend)
            ),
        ),
        notes=f"speedup {speedup:.2f}x (acceptance bar >= {MIN_SPEEDUP}x); "
        "identical seeded traffic, capacity/budget invariants asserted",
    )
    emit(result.render())
    emit_json(
        "engine-sharding",
        {
            "shards": NUM_SHARDS,
            "single_tasks_per_sec": single.throughput,
            "sharded_tasks_per_sec": sharded.throughput,
            "speedup": speedup,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"sharded engine only {speedup:.2f}x the single scheduler "
        f"({sharded.throughput:,.0f} vs {single.throughput:,.0f} tasks/s)"
    )
    # 4x the engaged candidate pool must not cost accuracy.
    assert sharded.realized_accuracy >= single.realized_accuracy - 0.02
