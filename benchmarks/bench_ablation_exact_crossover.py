"""Ablation A3: where exact enumeration loses to the bucket estimator.

Exact BV-JQ is O(2^n); the estimator is O(numBuckets * n^2).  This
ablation locates the practical crossover, justifying the library's
``exact_cutoff`` default (12 in the selection objective).
"""

import time

import numpy as np
import pytest

from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.quality import estimate_jq, exact_jq_bv

SIZES = (6, 10, 14, 18)


def test_exact_vs_bucket_crossover(benchmark, emit):
    rng = np.random.default_rng(0)
    juries = {
        n: np.clip(rng.normal(0.7, 0.2, n), 0.05, 0.95) for n in SIZES
    }

    def sweep():
        exact_times, bucket_times, errors = [], [], []
        for n in SIZES:
            q = juries[n]
            start = time.perf_counter()
            exact = exact_jq_bv(q, max_size=20)
            exact_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            approx = estimate_jq(q)
            bucket_times.append(time.perf_counter() - start)
            errors.append(abs(exact - approx))
        return ExperimentResult(
            experiment_id="ablation-crossover",
            title="Exact enumeration vs bucket estimator",
            x_label="n",
            xs=tuple(float(n) for n in SIZES),
            series=(
                SweepSeries("exact (s)", tuple(exact_times)),
                SweepSeries("bucket (s)", tuple(bucket_times)),
                SweepSeries("|error|", tuple(errors)),
            ),
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(result.render(6))
    exact_times = result.series_by_name("exact (s)").values
    bucket_times = result.series_by_name("bucket (s)").values
    errors = result.series_by_name("|error|").values
    # Exponential blowup: exact at n=18 costs far more than at n=6.
    assert exact_times[-1] > exact_times[0]
    # The estimator stays fast and accurate at the largest size.
    assert bucket_times[-1] < exact_times[-1]
    assert errors[-1] < 0.01
