"""Figure 6: end-to-end OPTJS vs MVJS over synthetic pools.

Paper shape: OPTJS above MVJS at every point of every sweep, with the
largest margin for low-quality pools (6(a), small mu) and small
candidate sets (6(c), small N).

Repetitions are scaled down from the paper's 1,000 to keep benchmark
wall-clock sane; EXPERIMENTS.md records higher-rep reference runs.
"""

import pytest

from repro.experiments import run_fig6a, run_fig6b, run_fig6c, run_fig6d

REPS = 3
EPSILON = 1e-6  # SA cooling floor; 1e-8 is the paper's full setting


def _assert_optjs_wins(result, slack=0.01):
    opt = result.series_by_name("OPTJS").values
    mv = result.series_by_name("MVJS").values
    assert all(o >= m - slack for o, m in zip(opt, mv)), result.render()


def test_fig6a_vary_quality_mean(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig6a(reps=REPS, seed=0, epsilon=EPSILON),
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    _assert_optjs_wins(result)


def test_fig6b_vary_budget(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig6b(reps=REPS, seed=0, epsilon=EPSILON),
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    _assert_optjs_wins(result)


def test_fig6c_vary_pool_size(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig6c(reps=REPS, seed=0, epsilon=EPSILON),
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    _assert_optjs_wins(result)


def test_fig6d_vary_cost_sd(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig6d(reps=REPS, seed=0, epsilon=EPSILON),
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    _assert_optjs_wins(result)
