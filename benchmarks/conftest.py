"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures at a
scaled-down repetition count (wall-clock sanity) and *emits the
rendered series* through the ``emit`` fixture: the table is printed
through capture (visible with ``pytest -s`` and in piped output) and
merged into ``benchmarks/results.txt`` (keyed per table header) so a
``pytest benchmarks/bench_*.py`` run leaves the reproduced numbers on
disk and partial runs refresh only their own tables.

Engine benchmarks additionally record a machine-readable trajectory
through ``emit_json``: one entry per benchmark id in
``benchmarks/BENCH_engine.json`` (tasks/sec, cache hit rates, frontier
build times, speedups), so CI — and anyone bisecting a regression —
can diff performance numbers without parsing the rendered tables.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"
JSON_PATH = pathlib.Path(__file__).parent / "BENCH_engine.json"


@pytest.fixture
def emit(capsys):
    """Emit a rendered experiment table to terminal + results file.

    Like ``emit_json``, blocks merge rather than clobber: each emitted
    table is keyed by its first line (the ``== id: ...`` header), and
    re-emitting a block replaces the old copy in place while leaving
    every other committed table untouched — so a single-benchmark run
    (CI's kernel smoke step, or a bisection) refreshes only its own
    tables instead of wiping the rest of ``results.txt``.
    """

    def _emit(rendered: str) -> None:
        with capsys.disabled():
            print()
            print(rendered)
        blocks = []
        if RESULTS_PATH.exists():
            blocks = [
                b for b in RESULTS_PATH.read_text().split("\n\n") if b.strip()
            ]
        header = rendered.splitlines()[0]
        replaced = False
        for i, block in enumerate(blocks):
            if block.splitlines()[0] == header:
                blocks[i] = rendered
                replaced = True
                break
        if not replaced:
            blocks.append(rendered)
        RESULTS_PATH.write_text("\n\n".join(blocks) + "\n\n")

    return _emit


@pytest.fixture
def emit_json():
    """Merge one benchmark's metrics into ``BENCH_engine.json``.

    ``emit_json("engine-throughput", {"tasks_per_sec": ...})`` — values
    must be JSON-serializable scalars/lists; keys are overwritten per
    benchmark id, so re-running a single benchmark refreshes only its
    own entry.
    """

    def _emit_json(benchmark_id: str, payload: dict) -> None:
        existing = {}
        if JSON_PATH.exists():
            try:
                existing = json.loads(JSON_PATH.read_text() or "{}")
            except json.JSONDecodeError:
                existing = {}
        existing[benchmark_id] = payload
        JSON_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    return _emit_json
