"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures at a
scaled-down repetition count (wall-clock sanity) and *emits the
rendered series* through the ``emit`` fixture: the table is printed
through capture (visible with ``pytest -s`` and in piped output) and
appended to ``benchmarks/results.txt`` so a plain
``pytest benchmarks/ --benchmark-only`` run leaves the reproduced
numbers on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Start each benchmark session with an empty results file."""
    RESULTS_PATH.write_text("")
    yield


@pytest.fixture
def emit(capsys):
    """Emit a rendered experiment table to terminal + results file."""

    def _emit(rendered: str) -> None:
        with capsys.disabled():
            print()
            print(rendered)
        with RESULTS_PATH.open("a") as fh:
            fh.write(rendered + "\n\n")

    return _emit
