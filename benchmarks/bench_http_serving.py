"""HTTP serving layer overhead: a seeded client fleet over the wire vs
the same fleet driving the facade in-process.

PR 7's acceptance scenario: an external-vote campaign — tasks POSTed,
vote offers fetched, every vote delivered as its own synchronous
``POST /votes`` round-trip through the loop mailbox — measured against
the identical seeded fleet calling ``Campaign.assignments``/``vote``
directly.  The benchmark re-asserts the HTTP-vs-in-process fingerprint
pin at benchmark scale (the correctness matrix lives in
``tests/engine/test_server.py``), then reports what serving over
localhost HTTP costs in wall-clock and sustained request throughput.

The acceptance bar is a *floor*, not a speedup: the stdlib threaded
server plus the synchronous vote mailbox must sustain at least
``MIN_REQUESTS_PER_SEC`` request round-trips per second — if a change
to the drain discipline ever serializes requests behind the poll
interval, this number collapses by two orders of magnitude.
"""

import json
import threading
import time
import urllib.request

import numpy as np

from repro.engine import Campaign, CampaignConfig, CampaignServer, EngineTask
from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.simulation import SyntheticPoolConfig, generate_pool

POOL_SIZE = 24
NUM_TASKS = 60
CAPACITY = 4
BUDGET_PER_TASK = 0.4
SEED = 2015
#: Sustained HTTP round-trips per second the serving stack must clear.
MIN_REQUESTS_PER_SEC = 50.0


def _pool():
    rng = np.random.default_rng(SEED)
    return generate_pool(
        SyntheticPoolConfig(num_workers=POOL_SIZE, quality_ceiling=0.95),
        rng,
    )


def _tasks():
    rng = np.random.default_rng(SEED + 1)
    truths = rng.integers(0, 2, size=NUM_TASKS)
    return [
        EngineTask(f"t{i:04d}", ground_truth=int(t))
        for i, t in enumerate(truths)
    ]


def _config(**overrides):
    defaults = dict(
        budget=BUDGET_PER_TASK * NUM_TASKS,
        capacity=CAPACITY,
        batch_size=20,
        confidence_target=0.95,
        seed=SEED,
        vote_source="external",
        ingest_grace=0.02,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _vote(task_id, worker_id):
    # Deterministic per-(task, worker) vote, identical for both fleets.
    return (hash((task_id, worker_id, "bench")) >> 3) & 1


def run_in_process():
    campaign = Campaign.open(_pool(), _config(ingestion="sync"))
    worker_ids = sorted(campaign.registry.worker_ids)
    campaign.submit(_tasks())
    campaign.run()  # seat the first juries; pause for external votes
    calls = 0
    start = time.perf_counter()
    while campaign.offers.open_count or campaign.engine._active:
        progressed = False
        for worker_id in worker_ids:
            for row in sorted(
                campaign.assignments(worker_id),
                key=lambda r: r["task_id"],
            ):
                calls += 1
                try:
                    campaign.vote(row["task_id"], worker_id,
                                  _vote(row["task_id"], worker_id))
                    progressed = True
                except Exception:
                    pass
        if not progressed:
            break
    elapsed = time.perf_counter() - start
    campaign.close_intake()
    metrics = campaign.run()
    campaign.close()
    return metrics, calls, elapsed


def run_over_http():
    campaign = Campaign.open(_pool(), _config(ingestion="async"))
    worker_ids = sorted(campaign.registry.worker_ids)
    server = CampaignServer(campaign, port=0)
    thread = threading.Thread(target=server.serve, daemon=True)
    thread.start()

    def get(path):
        with urllib.request.urlopen(server.url + path, timeout=30) as r:
            return json.loads(r.read())

    def post(path, payload):
        request = urllib.request.Request(
            server.url + path,
            data=json.dumps(payload).encode(),
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    import urllib.error

    post("/tasks", {"tasks": [
        {"task_id": t.task_id, "ground_truth": t.ground_truth}
        for t in _tasks()
    ]})
    while True:
        status = get("/status")
        if (status["idle"] and status["staged"] == 0
                and status["queued_events"] == 0):
            break
        time.sleep(0.002)

    requests = 0
    start = time.perf_counter()
    while True:
        status = get("/status")
        requests += 1
        if status["open_offers"] == 0 and status["active"] == 0:
            break
        progressed = False
        for worker_id in worker_ids:
            rows = get(f"/assignments?worker={worker_id}")["assignments"]
            requests += 1
            for row in sorted(rows, key=lambda r: r["task_id"]):
                code, _ = post("/votes", {
                    "task_id": row["task_id"],
                    "worker_id": worker_id,
                    "vote": _vote(row["task_id"], worker_id),
                })
                requests += 1
                if code == 200:
                    progressed = True
        if not progressed:
            time.sleep(0.005)
    elapsed = time.perf_counter() - start
    post("/admin/close", {"mode": "drain"})
    thread.join(timeout=60)
    server.shutdown()
    metrics = campaign.metrics
    campaign.close()
    return metrics, requests, elapsed


def test_http_fleet_vs_in_process(benchmark, emit, emit_json):
    def sweep():
        return run_in_process(), run_over_http()

    (in_proc, in_calls, in_elapsed), (http, http_requests, http_elapsed) = (
        benchmark.pedantic(sweep, rounds=1, iterations=1)
    )
    # The pin, re-asserted at benchmark scale.
    assert http.fingerprint() == in_proc.fingerprint(), (
        "HTTP fleet diverged from the in-process fleet"
    )
    assert http.completed == NUM_TASKS

    requests_per_sec = http_requests / http_elapsed
    overhead = http_elapsed / max(in_elapsed, 1e-9)
    result = ExperimentResult(
        experiment_id="engine-http-serving",
        title=(
            f"HTTP serving fleet vs in-process fleet "
            f"({POOL_SIZE} workers, {NUM_TASKS} tasks, seeded identical)"
        ),
        x_label="transport (0=in-process, 1=HTTP)",
        xs=(0.0, 1.0),
        series=(
            SweepSeries("votes cast", (in_proc.votes_cast, http.votes_cast)),
            SweepSeries(
                "fleet wall seconds",
                (round(in_elapsed, 4), round(http_elapsed, 4)),
            ),
            SweepSeries(
                "round-trips/sec",
                (round(in_calls / max(in_elapsed, 1e-9), 1),
                 round(requests_per_sec, 1)),
            ),
        ),
        notes=(
            f"fingerprints byte-identical; {http_requests} HTTP round-trips "
            f"at {requests_per_sec:,.0f} req/s "
            f"({overhead:.1f}x in-process wall time); "
            f"floor {MIN_REQUESTS_PER_SEC:,.0f} req/s"
        ),
    )
    emit(result.render())
    emit_json(
        "engine-http-serving",
        {
            "tasks": NUM_TASKS,
            "votes_cast": http.votes_cast,
            "http_requests": http_requests,
            "http_requests_per_sec": requests_per_sec,
            "in_process_fleet_seconds": in_elapsed,
            "http_fleet_seconds": http_elapsed,
            "fingerprint_identical": True,
        },
    )
    assert requests_per_sec >= MIN_REQUESTS_PER_SEC, (
        f"HTTP serving sustained only {requests_per_sec:,.0f} req/s "
        f"(floor {MIN_REQUESTS_PER_SEC:,.0f})"
    )
