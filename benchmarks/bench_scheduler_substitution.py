"""Substitute search: availability-indexed heap vs linear rescan.

The unsharded engine's profiled bottleneck at 64 workers was
``CampaignScheduler``'s substitute search: every saturated planned seat
rescanned the whole informativeness-ranked pool, and under load the
head of that ranking is exactly the saturated part — O(pool) wasted
work per seat, every batch.  :class:`~repro.engine.SubstituteIndex`
replaces the scan with a heap that drops workers observed saturated for
the remainder of the batch (capacity only decreases within ``admit``).

This benchmark drives identical seeded 64-worker campaigns — burst
batches against capacity 2, so substitution is constantly engaged —
through both implementations and asserts

* **identical seatings**: the end-to-end metrics fingerprints match
  (the index is an indexing change, not a policy change), and
* **the unsharded path no longer falls behind**: the heap-indexed run
  completes at least as fast as the linear-scan run (with slack for
  timer noise).
"""

import numpy as np

from repro.engine import Campaign, CampaignConfig, EngineTask
from repro.engine.scheduler import CampaignScheduler, linear_best_substitute
from repro.engine.state import informativeness_key
from repro.experiments.reporting import ExperimentResult, SweepSeries
from repro.simulation import SyntheticPoolConfig, generate_pool

POOL_SIZE = 64
CAPACITY = 2
BATCH_SIZE = 200  # burst ingestion keeps the pool saturated
NUM_TASKS = 3_000
BUDGET_PER_TASK = 0.25
SEED = 2015
#: The heap path must not be slower than the linear path beyond timer
#: noise; on a saturated 64-worker pool it is typically well ahead.
MAX_SLOWDOWN = 1.15


class _LinearScanIndex:
    """The pre-index substitute search, reconstructed as the oracle
    (same production ranking key as the heap)."""

    def __init__(self, states):
        self._ranked = sorted(
            states, key=lambda s: informativeness_key(s.worker)
        )

    def best(self, max_cost, exclude):
        return linear_best_substitute(self._ranked, max_cost, exclude)


def run_campaign(use_heap_index: bool):
    rng = np.random.default_rng(SEED)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=POOL_SIZE, quality_ceiling=0.95), rng
    )
    budget = BUDGET_PER_TASK * NUM_TASKS
    campaign = Campaign.open(
        pool,
        CampaignConfig(
            budget=budget,
            capacity=CAPACITY,
            batch_size=BATCH_SIZE,
            confidence_target=0.95,
            seed=SEED,
        ),
    )
    truths = rng.integers(0, 2, size=NUM_TASKS)
    campaign.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    if not use_heap_index:
        original = CampaignScheduler._make_substitute_index
        CampaignScheduler._make_substitute_index = (
            lambda self: _LinearScanIndex(self.registry.states)
        )
        try:
            metrics = campaign.run()
        finally:
            CampaignScheduler._make_substitute_index = original
    else:
        metrics = campaign.run()

    assert metrics.completed == NUM_TASKS
    assert metrics.peak_worker_load <= CAPACITY
    assert metrics.total_spend <= budget + 1e-6
    return metrics


def test_substitution_index_speed_and_equivalence(benchmark, emit, emit_json):
    def sweep():
        linear = run_campaign(use_heap_index=False)
        heap = run_campaign(use_heap_index=True)
        return linear, heap

    linear, heap = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Indexing change, not a policy change: byte-identical campaigns.
    assert heap.fingerprint() == linear.fingerprint()

    speedup = heap.throughput / linear.throughput
    result = ExperimentResult(
        experiment_id="scheduler-substitution",
        title=(
            f"Substitute search: heap index vs linear rescan "
            f"({POOL_SIZE} workers, capacity {CAPACITY}, "
            f"burst batches of {BATCH_SIZE}, {NUM_TASKS} tasks)"
        ),
        x_label="implementation (1=linear, 2=heap)",
        xs=(1.0, 2.0),
        series=(
            SweepSeries(
                "tasks/sec", (linear.throughput, heap.throughput)
            ),
            SweepSeries(
                "wall seconds", (linear.wall_seconds, heap.wall_seconds)
            ),
        ),
        notes=(
            f"heap/linear speedup {speedup:.2f}x; identical fingerprints "
            f"(same seatings, same spend); acceptance bar: heap >= "
            f"{1 / MAX_SLOWDOWN:.2f}x linear"
        ),
    )
    emit(result.render())
    emit_json(
        "scheduler-substitution",
        {
            "linear_tasks_per_sec": linear.throughput,
            "heap_tasks_per_sec": heap.throughput,
            "speedup": speedup,
        },
    )

    assert speedup >= 1.0 / MAX_SLOWDOWN, (
        f"heap-indexed substitution fell behind the linear scan: "
        f"{heap.throughput:,.0f} vs {linear.throughput:,.0f} tasks/s"
    )
